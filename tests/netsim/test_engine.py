"""Simulator execution semantics: ordering, run_until, periodic processes."""

import pytest

from repro.netsim.engine import Simulator


def test_run_executes_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(5.0, out.append, "late")
    sim.schedule(1.0, out.append, "early")
    sim.run()
    assert out == ["early", "late"]
    assert sim.now == 5.0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_executes_boundary_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.schedule(2.0, out.append, 2)
    sim.schedule(3.0, out.append, 3)
    sim.run_until(2.0)
    assert out == [1, 2]
    assert sim.now == 2.0


def test_run_until_advances_clock_with_no_events():
    sim = Simulator()
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(ValueError):
        sim.run_until(4.0)


def test_events_can_schedule_events():
    sim = Simulator()
    out = []

    def chain(n):
        out.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert out == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_max_events():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(float(i), out.append, i)
    executed = sim.run(max_events=2)
    assert executed == 2
    assert out == [0, 1]


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 4


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_period_change_from_callback_applies_to_next(self):
        sim = Simulator()
        ticks = []
        proc = None

        def cb():
            ticks.append(sim.now)
            proc.period = 20.0  # first firing widens subsequent gaps

        proc = sim.every(10.0, cb)
        sim.run_until(60.0)
        assert ticks == [10.0, 30.0, 50.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        proc = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(25.0, proc.stop)
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]
        assert proc.stopped

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []
        proc = None

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 2:
                proc.stop()

        proc = sim.every(5.0, cb)
        sim.run_until(100.0)
        assert ticks == [5.0, 10.0]

    def test_stop_from_inside_callback_keeps_other_events_alive(self):
        """Stopping from inside the firing cancels an already-popped event.

        Regression: that cancel used to double-decrement the queue's live
        count, so events scheduled after the process silently never ran
        (the queue claimed to be empty) and ``run_until`` could spin
        forever on the orphaned heap entries.
        """
        sim = Simulator()
        ticks = []
        later = []
        proc = None

        def cb():
            ticks.append(sim.now)
            proc.stop()  # cancels the handle of the event firing right now

        proc = sim.every(5.0, cb)
        sim.schedule(7.0, later.append, "a")
        sim.schedule(9.0, later.append, "b")
        sim.run_until(100.0)
        assert ticks == [5.0]
        assert later == ["a", "b"]
        assert len(sim.queue) == 0
        assert not sim.queue

    def test_reschedule_overrides_next_firing(self):
        sim = Simulator()
        ticks = []
        proc = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(1.0, proc.reschedule, 2.0)
        sim.run_until(12.0)
        # rescheduled firing at t=3, then periodic resumes at 13
        assert ticks == [3.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)

    def test_reschedule_after_stop_rejected(self):
        sim = Simulator()
        proc = sim.every(1.0, lambda: None)
        proc.stop()
        with pytest.raises(RuntimeError):
            proc.reschedule(1.0)
