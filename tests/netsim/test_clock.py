"""Clock invariants: monotonicity and rejection of rewinds."""

import pytest

from repro.netsim.clock import Clock


def test_starts_at_zero_by_default():
    assert Clock().now == 0.0


def test_starts_at_given_time():
    assert Clock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        Clock(-1.0)


def test_advance_to_moves_forward():
    c = Clock()
    c.advance_to(3.5)
    assert c.now == 3.5


def test_advance_to_same_time_allowed():
    c = Clock(2.0)
    c.advance_to(2.0)
    assert c.now == 2.0


def test_advance_to_rewind_rejected():
    c = Clock(2.0)
    with pytest.raises(ValueError):
        c.advance_to(1.0)


def test_advance_by_accumulates():
    c = Clock()
    c.advance_by(1.0)
    c.advance_by(2.5)
    assert c.now == 3.5


def test_advance_by_zero_allowed():
    c = Clock(1.0)
    c.advance_by(0.0)
    assert c.now == 1.0


def test_advance_by_negative_rejected():
    c = Clock(1.0)
    with pytest.raises(ValueError):
        c.advance_by(-0.1)
