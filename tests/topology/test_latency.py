"""Latency oracle: Dijkstra correctness, symmetry, member indexing."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import PhysicalNetwork, TransitStubParams, generate_transit_stub


def _line_network(weights):
    """Path graph 0-1-2-... with given edge weights."""
    n = len(weights) + 1
    return PhysicalNetwork(
        n=n,
        edges_u=np.arange(n - 1, dtype=np.int32),
        edges_v=np.arange(1, n, dtype=np.int32),
        edges_w=np.asarray(weights, dtype=np.float64),
        tier=np.ones(n, dtype=np.int8),
        domain=np.zeros(n, dtype=np.int32),
    )


class TestOnLine:
    def test_distances_sum_along_path(self):
        net = _line_network([1.0, 2.0, 4.0])
        oracle = LatencyOracle(net, np.array([0, 3]))
        assert oracle.between(0, 1) == pytest.approx(7.0)

    def test_diagonal_zero(self):
        net = _line_network([1.0, 2.0])
        oracle = LatencyOracle(net, np.array([0, 1, 2]))
        assert np.all(np.diag(oracle.matrix) == 0.0)

    def test_symmetric(self):
        net = _line_network([1.0, 5.0, 2.0])
        oracle = LatencyOracle(net, np.array([0, 2, 3]))
        assert np.allclose(oracle.matrix, oracle.matrix.T)

    def test_member_index_space(self):
        net = _line_network([1.0, 2.0, 4.0])
        oracle = LatencyOracle(net, np.array([3, 0]))  # order defines index
        assert oracle.between(0, 1) == pytest.approx(7.0)
        assert oracle.n == 2

    def test_sum_to(self):
        net = _line_network([1.0, 2.0])
        oracle = LatencyOracle(net, np.array([0, 1, 2]))
        assert oracle.sum_to(0, [1, 2]) == pytest.approx(1.0 + 3.0)
        assert oracle.sum_to(0, []) == 0.0

    def test_mean_pairwise(self):
        net = _line_network([2.0])
        oracle = LatencyOracle(net, np.array([0, 1]))
        # matrix [[0,2],[2,0]] -> mean 1.0
        assert oracle.mean_pairwise() == pytest.approx(1.0)


class TestValidation:
    def test_duplicate_hosts_rejected(self):
        net = _line_network([1.0])
        with pytest.raises(ValueError):
            LatencyOracle(net, np.array([0, 0]))

    def test_out_of_range_rejected(self):
        net = _line_network([1.0])
        with pytest.raises(ValueError):
            LatencyOracle(net, np.array([0, 5]))

    def test_empty_rejected(self):
        net = _line_network([1.0])
        with pytest.raises(ValueError):
            LatencyOracle(net, np.array([], dtype=np.int64))

    def test_disconnected_rejected(self):
        net = PhysicalNetwork(
            n=4,
            edges_u=np.array([0], dtype=np.int32),
            edges_v=np.array([1], dtype=np.int32),
            edges_w=np.array([1.0]),
            tier=np.ones(4, dtype=np.int8),
            domain=np.zeros(4, dtype=np.int32),
        )
        with pytest.raises(ValueError):
            LatencyOracle(net, np.array([0, 3]))


class TestAgainstNetworkx:
    def test_matches_networkx_dijkstra(self):
        params = TransitStubParams(2, 2, 2, 4)
        net = generate_transit_stub(params, RngRegistry(3).stream("t"))
        hosts = RngRegistry(3).stream("m").choice(net.n, size=10, replace=False)
        oracle = LatencyOracle(net, hosts)

        g = nx.Graph()
        for u, v, w in zip(net.edges_u, net.edges_v, net.edges_w):
            g.add_edge(int(u), int(v), weight=float(w))
        for i, hi in enumerate(hosts):
            lengths = nx.single_source_dijkstra_path_length(g, int(hi))
            for j, hj in enumerate(hosts):
                assert oracle.matrix[i, j] == pytest.approx(lengths[int(hj)])

    def test_rows_view(self):
        params = TransitStubParams(2, 2, 1, 4)
        net = generate_transit_stub(params, RngRegistry(3).stream("t"))
        oracle = LatencyOracle(net, np.arange(6))
        rows = oracle.rows([1, 3])
        assert rows.shape == (2, 6)
        assert np.array_equal(rows[0], oracle.matrix[1])
