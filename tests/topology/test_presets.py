"""Presets: paper-scale shapes and the ts-large vs ts-small contrast."""

import numpy as np
import pytest

from repro.topology.presets import (
    TS_LARGE, TS_SMALL, build_preset, preset_params, ts_large, ts_small,
)
from repro.netsim.rng import RngRegistry


def test_preset_lookup():
    assert preset_params("ts-large") is TS_LARGE
    assert preset_params("ts-small") is TS_SMALL


def test_unknown_preset_rejected():
    with pytest.raises(KeyError):
        preset_params("ts-medium")


def test_paper_latency_constants():
    for p in (TS_LARGE, TS_SMALL):
        assert p.latencies.stub_stub == 5.0
        assert p.latencies.stub_transit == 20.0
        assert p.latencies.transit_transit == 100.0


def test_similar_total_host_count():
    # both presets target ~6000 stub hosts (the paper: "both of which
    # contain about [6000] nodes")
    assert TS_LARGE.n_stub == 6000
    assert TS_SMALL.n_stub == 6000


def test_backbone_contrast():
    # ts-large: big backbone; ts-small: tiny backbone, dense edge networks
    assert TS_LARGE.n_transit == 100
    assert TS_SMALL.n_transit == 10
    assert TS_LARGE.stub_nodes_per_domain < TS_SMALL.stub_nodes_per_domain


def test_ts_large_builds():
    net = ts_large(seed=0)
    assert net.n == TS_LARGE.n_hosts
    assert len(net.stub_hosts) == 6000


def test_ts_small_builds():
    net = ts_small(seed=0)
    assert net.n == TS_SMALL.n_hosts
    assert len(net.stub_hosts) == 6000


def test_build_preset_deterministic():
    a = build_preset("ts-small", RngRegistry(1).stream("x"))
    b = build_preset("ts-small", RngRegistry(1).stream("x"))
    assert np.array_equal(a.edges_u, b.edges_u)


def test_cross_domain_probability_contrast():
    """In ts-large two random stub hosts almost never share a stub domain;
    in ts-small they collide far more often — the property behind the
    Fig 5(c)/6(c) contrast."""
    rng = np.random.default_rng(0)
    results = {}
    for name, builder in (("large", ts_large), ("small", ts_small)):
        net = builder(seed=2)
        hosts = rng.choice(net.stub_hosts, size=400, replace=False)
        dom = net.domain[hosts]
        same = np.mean(dom[:200] == dom[200:])
        results[name] = same
    assert results["small"] > results["large"]


def test_waxman_preset_builds():
    net = build_preset("waxman", RngRegistry(0).stream("w"))
    assert net.n == 6000
    assert len(net.stub_hosts) == 6000  # all hosts may join overlays


def test_waxman_preset_deterministic():
    a = build_preset("waxman", RngRegistry(1).stream("w"))
    b = build_preset("waxman", RngRegistry(1).stream("w"))
    assert np.array_equal(a.edges_u, b.edges_u)
