"""Backend parity: every latency oracle honors the same protocol contract."""

import numpy as np
import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.sweep import run_sweep
from repro.netsim.rng import RngRegistry, derive_seed
from repro.topology.factory import (
    ORACLE_BACKENDS,
    VIVALDI_STREAM,
    build_oracle,
    oracle_cache_params,
)
from repro.topology.landmark import LandmarkOracle, choose_landmarks
from repro.topology.latency import LatencyOracle
from repro.topology.presets import build_preset
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.topology.vivaldi import VivaldiOracle

N = 60


@pytest.fixture(scope="module")
def net():
    return generate_transit_stub(
        TransitStubParams(2, 3, 2, 6), RngRegistry(5).stream("t")
    )


@pytest.fixture(scope="module")
def hosts(net):
    return RngRegistry(5).stream("m").choice(net.n, size=N, replace=False)


@pytest.fixture(scope="module", params=ORACLE_BACKENDS)
def oracle(request, net, hosts):
    return build_oracle(request.param, net, hosts, seed=7)


class TestProtocolInvariants:
    """Contracts every backend must satisfy (parametrized over all three)."""

    def test_estimates_are_symmetric_nonnegative_zero_diagonal(self, oracle):
        d = oracle.dense()
        assert d.shape == (N, N)
        assert np.all(np.isfinite(d))
        assert np.all(d >= 0)
        assert np.allclose(d, d.T)
        assert np.all(np.diagonal(d) == 0.0)

    def test_between_matches_pairwise(self, oracle):
        rng = np.random.default_rng(0)
        a = rng.integers(0, N, size=20)
        b = rng.integers(0, N, size=20)
        elementwise = oracle.pairwise(a, b)
        for k in range(20):
            assert oracle.between(int(a[k]), int(b[k])) == elementwise[k]

    def test_to_many_matches_between(self, oracle):
        others = np.array([0, 3, 7, 12, 12, 59])
        vec = oracle.to_many(5, others)
        assert vec.shape == (6,)
        for k, j in enumerate(others):
            assert vec[k] == oracle.between(5, int(j))
        assert oracle.to_many(5, []).shape == (0,)

    def test_rows_match_to_many(self, oracle):
        everyone = np.arange(N, dtype=np.intp)
        rows = oracle.rows([2, 9])
        assert rows.shape == (2, N)
        assert np.array_equal(rows[0], oracle.to_many(2, everyone))
        assert np.array_equal(rows[1], oracle.to_many(9, everyone))

    def test_sum_to_matches_to_many(self, oracle):
        others = [1, 4, 44]
        assert oracle.sum_to(8, others) == pytest.approx(
            float(oracle.to_many(8, others).sum())
        )
        assert oracle.sum_to(8, []) == 0.0

    def test_mean_pairwise_matches_dense(self, oracle):
        assert oracle.mean_pairwise() == pytest.approx(float(oracle.dense().mean()))

    def test_n_and_state(self, oracle):
        assert oracle.n == N
        assert oracle.state_nbytes() > 0
        assert oracle.mean_physical_link() > 0

    def test_same_inputs_same_estimates(self, oracle, net, hosts):
        again = build_oracle(oracle.backend, net, hosts, seed=7)
        assert np.array_equal(oracle.dense(), again.dense())


class TestStateRoundTrip:
    """from_matrix / from_state reproduce the constructor's estimates."""

    def test_exact_from_matrix(self, net, hosts):
        direct = LatencyOracle(net, hosts)
        rebuilt = LatencyOracle.from_matrix(net, hosts, direct.matrix.copy())
        assert np.array_equal(rebuilt.matrix, direct.matrix)

    def test_exact_from_matrix_rejects_asymmetry(self, net, hosts):
        bad = LatencyOracle(net, hosts).matrix.copy()
        bad[0, 1] += 1.0
        with pytest.raises(ValueError, match="symmetric"):
            LatencyOracle.from_matrix(net, hosts, bad)

    def test_vivaldi_from_state(self, net, hosts):
        rng = np.random.Generator(np.random.PCG64(derive_seed(7, VIVALDI_STREAM)))
        direct = VivaldiOracle(net, hosts, rng)
        rebuilt = VivaldiOracle.from_state(
            net, hosts,
            coords=direct.coords.copy(),
            height=direct.height.copy(),
            rel_errors=direct.rel_errors.copy(),
        )
        assert np.array_equal(rebuilt.dense(), direct.dense())
        assert rebuilt.dim == direct.dim

    def test_vivaldi_from_state_rejects_negative_height(self, net, hosts):
        with pytest.raises(ValueError, match="non-negative"):
            VivaldiOracle.from_state(
                net, hosts,
                coords=np.zeros((N, 4)),
                height=np.full(N, -1.0),
                rel_errors=np.zeros(1),
            )

    def test_landmark_from_state(self, net, hosts):
        direct = LandmarkOracle(net, hosts)
        rebuilt = LandmarkOracle.from_state(
            net, hosts,
            landmarks=direct.landmarks.copy(),
            landmark_matrix=direct.landmark_matrix.copy(),
        )
        assert np.array_equal(rebuilt.dense(), direct.dense())

    def test_landmark_from_state_rejects_wrong_shape(self, net, hosts):
        direct = LandmarkOracle(net, hosts)
        with pytest.raises(ValueError, match="shape"):
            LandmarkOracle.from_state(
                net, hosts,
                landmarks=direct.landmarks,
                landmark_matrix=direct.landmark_matrix[:, :-1],
            )


class TestFactory:
    def test_unknown_backend_rejected(self, net, hosts):
        with pytest.raises(ValueError, match="unknown oracle backend"):
            build_oracle("psychic", net, hosts)

    def test_unknown_option_rejected(self, net, hosts):
        with pytest.raises(ValueError, match="unknown 'vivaldi' oracle option"):
            build_oracle("vivaldi", net, hosts, options={"dims": 4})

    def test_vivaldi_cache_params_include_seed(self):
        assert oracle_cache_params("vivaldi", seed=3)["seed"] == 3
        assert "seed" not in oracle_cache_params("exact", seed=3)
        assert "seed" not in oracle_cache_params("landmark", seed=3)

    def test_vivaldi_stream_isolated_from_master_seed(self, net, hosts):
        """Different master seeds give different fits; the stream name
        keeps the fit from colliding with any other component's draws."""
        a = build_oracle("vivaldi", net, hosts, seed=0)
        b = build_oracle("vivaldi", net, hosts, seed=1)
        assert not np.array_equal(a.coords, b.coords)


class TestAccuracy:
    """Embedding error bounds on the transit-stub presets."""

    @pytest.mark.parametrize("preset", ["ts-small", "ts-large"])
    def test_vivaldi_median_error_bounded(self, preset):
        rngs = RngRegistry(11)
        network = build_preset(preset, rngs.stream("topology"))
        members = rngs.stream("membership").choice(
            network.stub_hosts, size=200, replace=False
        )
        oracle = build_oracle("vivaldi", network, members, seed=11)
        err = oracle.error_summary()
        # pinned bound: the 4-d height fit stays well under 30% median
        # relative error on both GT-ITM presets (typical: 0.10-0.20)
        assert err["median_rel_error"] < 0.30
        assert err["p90_rel_error"] < 1.0

    def test_landmark_cross_domain_near_exact(self):
        """Triangulation through per-domain transit landmarks: estimates
        are upper bounds, near-exact for cross-domain pairs."""
        rngs = RngRegistry(11)
        network = build_preset("ts-small", rngs.stream("topology"))
        members = rngs.stream("membership").choice(
            network.stub_hosts, size=120, replace=False
        )
        exact = LatencyOracle(network, members)
        lm = LandmarkOracle(network, members)
        est, truth = lm.dense(), exact.matrix
        off = ~np.eye(len(members), dtype=bool)
        # triangle estimates can never undershoot the true shortest path
        assert np.all(est[off] >= truth[off] - 1e-9)
        dom = network.domain[members]
        cross = off & (dom[:, None] != dom[None, :])
        rel = (est[cross] - truth[cross]) / truth[cross]
        assert float(np.median(rel)) < 0.10

    def test_landmark_choice_deterministic_per_domain(self):
        rngs = RngRegistry(11)
        network = build_preset("ts-small", rngs.stream("topology"))
        a = choose_landmarks(network, 2)
        b = choose_landmarks(network, 2)
        assert np.array_equal(a, b)
        assert np.array_equal(a, np.sort(a))


FAST = dict(
    preset="ts-small",
    n_overlay=80,
    duration=900.0,
    sample_interval=300.0,
    lookups_per_sample=80,
)


class TestEndToEnd:
    def test_vivaldi_run_replays_exactly(self):
        cfg = ExperimentConfig(prop=PROPConfig(policy="G"), oracle="vivaldi", **FAST)
        a, b = run_experiment(cfg), run_experiment(cfg)
        assert np.array_equal(a.lookup_latency, b.lookup_latency)
        assert np.array_equal(a.exchanges, b.exchanges)

    def test_vivaldi_serial_matches_workers(self):
        """Byte-identical series serial vs a 2-worker pool (the named
        oracle stream never perturbs any other component's draws)."""
        cfg = ExperimentConfig(prop=PROPConfig(policy="G"), oracle="vivaldi", **FAST)
        serial = run_experiment(cfg)
        pooled = run_sweep({"run": cfg}, workers=2)["run"]
        assert np.array_equal(serial.times, pooled.times)
        assert np.array_equal(serial.lookup_latency, pooled.lookup_latency)
        assert np.array_equal(serial.stretch, pooled.stretch)
        assert np.array_equal(serial.probes, pooled.probes)
        assert np.array_equal(serial.exchanges, pooled.exchanges)

    @pytest.mark.parametrize("backend", ["vivaldi", "landmark"])
    def test_propg_improves_under_approximate_oracle(self, backend):
        cfg = ExperimentConfig(prop=PROPConfig(policy="G"), oracle=backend, **FAST)
        result = run_experiment(cfg)
        assert result.final_lookup_latency < result.initial_lookup_latency

    def test_backend_choice_leaves_membership_untouched(self):
        """Same seed, different backends → identical member placement
        and initial overlay (the oracle stream is isolated)."""
        from repro.harness.experiment import build_world

        worlds = {
            b: build_world(ExperimentConfig(oracle=b, **FAST))
            for b in ORACLE_BACKENDS
        }
        ref = worlds["exact"]
        for w in worlds.values():
            assert np.array_equal(w.oracle.hosts, ref.oracle.hosts)
            assert np.array_equal(w.overlay.embedding, ref.overlay.embedding)
            assert sorted(w.overlay.iter_edges()) == sorted(ref.overlay.iter_edges())
