"""Oracle disk cache: hits, correctness, corruption recovery."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.topology.cache import cache_key, cached_oracle
from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


@pytest.fixture()
def net():
    return generate_transit_stub(
        TransitStubParams(2, 2, 2, 5), RngRegistry(1).stream("t")
    )


@pytest.fixture()
def hosts(net):
    return RngRegistry(1).stream("m").choice(net.n, size=10, replace=False)


def test_matches_direct_computation(net, hosts, tmp_path):
    cached = cached_oracle(net, hosts, tmp_path)
    direct = LatencyOracle(net, hosts)
    assert np.array_equal(cached.matrix, direct.matrix)


def test_second_call_loads_from_disk(net, hosts, tmp_path):
    a = cached_oracle(net, hosts, tmp_path)
    files = list(tmp_path.glob("oracle-*.npy"))
    assert len(files) == 1
    mtime = files[0].stat().st_mtime_ns
    b = cached_oracle(net, hosts, tmp_path)
    assert files[0].stat().st_mtime_ns == mtime  # not rewritten
    assert np.array_equal(a.matrix, b.matrix)


def test_key_changes_with_membership(net, hosts, tmp_path):
    other = np.sort(hosts)[::-1].copy()
    assert cache_key(net, hosts) != cache_key(net, other)


def test_key_changes_with_topology(net, hosts):
    other_net = generate_transit_stub(
        TransitStubParams(2, 2, 2, 5), RngRegistry(2).stream("t")
    )
    assert cache_key(net, hosts) != cache_key(other_net, hosts)


def test_corrupt_cache_regenerated(net, hosts, tmp_path):
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    path.write_bytes(b"garbage")
    oracle = cached_oracle(net, hosts, tmp_path)
    direct = LatencyOracle(net, hosts)
    assert np.array_equal(oracle.matrix, direct.matrix)


def test_wrong_shape_regenerated(net, hosts, tmp_path):
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    np.save(path, np.zeros((3, 3)))
    oracle = cached_oracle(net, hosts, tmp_path)
    assert oracle.matrix.shape == (10, 10)
    assert oracle.matrix.max() > 0


def test_cached_oracle_fully_functional(net, hosts, tmp_path):
    oracle = cached_oracle(net, hosts, tmp_path)
    oracle = cached_oracle(net, hosts, tmp_path)  # loaded path
    assert oracle.n == 10
    assert oracle.between(0, 0) == 0.0
    assert oracle.sum_to(0, [1, 2]) > 0
    assert oracle.mean_physical_link() > 0
