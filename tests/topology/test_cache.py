"""Oracle disk cache: hits, correctness, corruption recovery, concurrency."""

import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.topology.cache import cache_key, cached_oracle, valid_matrix
from repro.topology.latency import LatencyOracle
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


@pytest.fixture()
def net():
    return generate_transit_stub(
        TransitStubParams(2, 2, 2, 5), RngRegistry(1).stream("t")
    )


@pytest.fixture()
def hosts(net):
    return RngRegistry(1).stream("m").choice(net.n, size=10, replace=False)


def test_matches_direct_computation(net, hosts, tmp_path):
    cached = cached_oracle(net, hosts, tmp_path)
    direct = LatencyOracle(net, hosts)
    assert np.array_equal(cached.matrix, direct.matrix)


def test_second_call_loads_from_disk(net, hosts, tmp_path):
    a = cached_oracle(net, hosts, tmp_path)
    files = list(tmp_path.glob("oracle-*.npy"))
    assert len(files) == 1
    mtime = files[0].stat().st_mtime_ns
    b = cached_oracle(net, hosts, tmp_path)
    assert files[0].stat().st_mtime_ns == mtime  # not rewritten
    assert np.array_equal(a.matrix, b.matrix)


def test_key_changes_with_membership(net, hosts, tmp_path):
    other = np.sort(hosts)[::-1].copy()
    assert cache_key(net, hosts) != cache_key(net, other)


def test_key_changes_with_topology(net, hosts):
    other_net = generate_transit_stub(
        TransitStubParams(2, 2, 2, 5), RngRegistry(2).stream("t")
    )
    assert cache_key(net, hosts) != cache_key(other_net, hosts)


def test_corrupt_cache_regenerated(net, hosts, tmp_path):
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    path.write_bytes(b"garbage")
    oracle = cached_oracle(net, hosts, tmp_path)
    direct = LatencyOracle(net, hosts)
    assert np.array_equal(oracle.matrix, direct.matrix)


def test_wrong_shape_regenerated(net, hosts, tmp_path):
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    np.save(path, np.zeros((3, 3)))
    oracle = cached_oracle(net, hosts, tmp_path)
    assert oracle.matrix.shape == (10, 10)
    assert oracle.matrix.max() > 0


def test_nonfinite_cache_regenerated(net, hosts, tmp_path):
    """A cached matrix with NaN/inf entries must be rejected, not served."""
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    bad = np.full((10, 10), np.inf)
    np.fill_diagonal(bad, 0.0)
    np.save(path, bad)
    oracle = cached_oracle(net, hosts, tmp_path)
    assert np.all(np.isfinite(oracle.matrix))
    assert np.array_equal(oracle.matrix, LatencyOracle(net, hosts).matrix)


def test_nonzero_diagonal_cache_regenerated(net, hosts, tmp_path):
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    bad = np.ones((10, 10))
    np.save(path, bad)
    oracle = cached_oracle(net, hosts, tmp_path)
    assert oracle.matrix[0, 0] == 0.0
    assert oracle.matrix.max() > 0


def test_valid_matrix_predicate():
    good = np.array([[0.0, 1.0], [1.0, 0.0]])
    assert valid_matrix(good, 2)
    assert not valid_matrix(good, 3)  # wrong size
    assert not valid_matrix(good.astype(np.int64), 2)  # wrong dtype
    assert not valid_matrix(np.array([[0.0, -1.0], [1.0, 0.0]]), 2)  # negative
    assert not valid_matrix(np.array([[0.0, np.nan], [1.0, 0.0]]), 2)  # NaN
    assert not valid_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]), 2)  # diag != 0
    assert not valid_matrix([[0.0, 1.0], [1.0, 0.0]], 2)  # not an ndarray
    assert not valid_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]), 2)  # asymmetric


def test_asymmetric_cache_regenerated(net, hosts, tmp_path):
    """An asymmetric cached matrix is rejected and rebuilt — asymmetry
    would silently skew every Var computation on an undirected substrate."""
    cached_oracle(net, hosts, tmp_path)
    path = next(tmp_path.glob("oracle-*.npy"))
    bad = LatencyOracle(net, hosts).matrix.copy()
    bad[0, 1] += 1.0  # break symmetry only
    np.save(path, bad)
    oracle = cached_oracle(net, hosts, tmp_path)
    assert np.array_equal(oracle.matrix, LatencyOracle(net, hosts).matrix)


def test_hit_path_goes_through_from_matrix(net, hosts, tmp_path, monkeypatch):
    """Cache hits must reconstruct via the validating classmethod, never
    ``__new__`` — constructor checks also guard the loaded path."""
    cached_oracle(net, hosts, tmp_path)
    calls = []
    original = LatencyOracle.from_matrix.__func__

    def spy(cls, network, hosts_, matrix):
        calls.append(matrix.shape)
        return original(cls, network, hosts_, matrix)

    monkeypatch.setattr(LatencyOracle, "from_matrix", classmethod(spy))
    oracle = cached_oracle(net, hosts, tmp_path)
    assert calls == [(10, 10)]
    assert np.array_equal(oracle.matrix, LatencyOracle(net, hosts).matrix)


def test_key_changes_with_backend(net, hosts):
    assert cache_key(net, hosts, "exact", {}) != cache_key(net, hosts, "vivaldi", {})


def test_key_changes_with_params(net, hosts):
    a = cache_key(net, hosts, "vivaldi", {"seed": 0, "dim": 4})
    b = cache_key(net, hosts, "vivaldi", {"seed": 1, "dim": 4})
    c = cache_key(net, hosts, "vivaldi", {"seed": 0, "dim": 8})
    assert len({a, b, c}) == 3


def test_backends_cached_side_by_side(net, tmp_path):
    """All three backends round-trip through the cache and agree with a
    freshly built oracle of the same backend."""
    from repro.topology.factory import build_oracle

    hosts = RngRegistry(1).stream("m").choice(net.n, size=40, replace=False)
    for backend in ("exact", "vivaldi", "landmark"):
        first = cached_oracle(net, hosts, tmp_path, backend=backend, seed=3)
        again = cached_oracle(net, hosts, tmp_path, backend=backend, seed=3)
        direct = build_oracle(backend, net, hosts, seed=3)
        assert type(again) is type(direct)
        assert np.array_equal(again.dense(), direct.dense())
        assert np.array_equal(first.dense(), again.dense())
    # one file per backend, none clobbered another's entry
    assert len(list(tmp_path.glob("oracle-*.npy"))) == 1
    assert len(list(tmp_path.glob("oracle-*.npz"))) == 2


def test_vivaldi_cache_respects_seed(net, tmp_path):
    hosts = RngRegistry(1).stream("m").choice(net.n, size=40, replace=False)
    a = cached_oracle(net, hosts, tmp_path, backend="vivaldi", seed=0)
    b = cached_oracle(net, hosts, tmp_path, backend="vivaldi", seed=1)
    assert not np.array_equal(a.coords, b.coords)  # distinct fits, distinct entries


def test_no_temp_files_left_behind(net, hosts, tmp_path):
    cached_oracle(net, hosts, tmp_path)
    leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
    assert leftovers == []


def test_concurrent_writers_never_corrupt(net, hosts, tmp_path):
    """Two processes racing to build the same entry both publish whole
    files via unique temps + atomic rename; the survivor is valid."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=cached_oracle, args=(net, hosts, tmp_path))
        for _ in range(3)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    files = list(tmp_path.glob("oracle-*.npy"))
    assert len(files) == 1
    assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
    oracle = cached_oracle(net, hosts, tmp_path)
    assert np.array_equal(oracle.matrix, LatencyOracle(net, hosts).matrix)


def test_cached_oracle_fully_functional(net, hosts, tmp_path):
    oracle = cached_oracle(net, hosts, tmp_path)
    oracle = cached_oracle(net, hosts, tmp_path)  # loaded path
    assert oracle.n == 10
    assert oracle.between(0, 0) == 0.0
    assert oracle.sum_to(0, [1, 2]) > 0
    assert oracle.mean_physical_link() > 0
