"""Transit-stub generator: structure, tiers, latencies, connectivity."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.topology.transit_stub import (
    TIER_STUB,
    TIER_TRANSIT,
    LinkLatencies,
    PhysicalNetwork,
    TransitStubParams,
    generate_transit_stub,
)


def _rng(seed=0):
    return RngRegistry(seed).stream("topo")


def _net(params=None, seed=0):
    if params is None:
        params = TransitStubParams(
            transit_domains=3,
            transit_nodes_per_domain=3,
            stub_domains_per_transit=2,
            stub_nodes_per_domain=5,
        )
    return generate_transit_stub(params, _rng(seed))


def _to_nx(net: PhysicalNetwork) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(net.n))
    for u, v, w in zip(net.edges_u, net.edges_v, net.edges_w):
        g.add_edge(int(u), int(v), weight=float(w))
    return g


class TestParams:
    def test_counts(self):
        p = TransitStubParams(4, 5, 3, 10)
        assert p.n_transit == 20
        assert p.n_stub == 20 * 3 * 10
        assert p.n_hosts == 20 + 600

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(transit_domains=0, transit_nodes_per_domain=1,
                 stub_domains_per_transit=1, stub_nodes_per_domain=1),
            dict(transit_domains=1, transit_nodes_per_domain=0,
                 stub_domains_per_transit=1, stub_nodes_per_domain=1),
            dict(transit_domains=1, transit_nodes_per_domain=1,
                 stub_domains_per_transit=-1, stub_nodes_per_domain=1),
            dict(transit_domains=1, transit_nodes_per_domain=1,
                 stub_domains_per_transit=1, stub_nodes_per_domain=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TransitStubParams(**kwargs)

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ValueError):
            LinkLatencies(stub_stub=0.0)


class TestGeneration:
    def test_host_count(self):
        net = _net()
        assert net.n == 3 * 3 + 9 * 2 * 5

    def test_connected(self):
        net = _net()
        assert nx.is_connected(_to_nx(net))

    def test_tiers(self):
        net = _net()
        assert int((net.tier == TIER_TRANSIT).sum()) == 9
        assert int((net.tier == TIER_STUB).sum()) == 90
        assert np.array_equal(net.stub_hosts, np.flatnonzero(net.tier == TIER_STUB))
        assert np.array_equal(net.transit_hosts, np.flatnonzero(net.tier == TIER_TRANSIT))

    def test_link_latencies_follow_tiers(self):
        net = _net()
        lat = net.params.latencies
        for u, v, w in zip(net.edges_u, net.edges_v, net.edges_w):
            tu, tv = net.tier[u], net.tier[v]
            if tu == TIER_TRANSIT and tv == TIER_TRANSIT:
                assert w == lat.transit_transit
            elif tu == TIER_STUB and tv == TIER_STUB:
                assert w == lat.stub_stub
            else:
                assert w == lat.stub_transit

    def test_no_duplicate_edges(self):
        net = _net()
        seen = set(zip(net.edges_u.tolist(), net.edges_v.tolist()))
        assert len(seen) == net.n_edges

    def test_stub_stub_links_stay_within_domain(self):
        net = _net()
        for u, v in zip(net.edges_u, net.edges_v):
            if net.tier[u] == TIER_STUB and net.tier[v] == TIER_STUB:
                assert net.domain[u] == net.domain[v]

    def test_each_stub_domain_has_one_gateway(self):
        net = _net()
        gateways: dict[int, int] = {}
        for u, v in zip(net.edges_u, net.edges_v):
            tu, tv = net.tier[u], net.tier[v]
            if tu != tv:  # stub-transit link
                stub = int(u if tu == TIER_STUB else v)
                dom = int(net.domain[stub])
                gateways[dom] = gateways.get(dom, 0) + 1
        n_stub_domains = 9 * 2
        assert len(gateways) == n_stub_domains
        assert all(c == 1 for c in gateways.values())

    def test_deterministic_in_seed(self):
        a, b = _net(seed=5), _net(seed=5)
        assert np.array_equal(a.edges_u, b.edges_u)
        assert np.array_equal(a.edges_v, b.edges_v)

    def test_different_seeds_differ(self):
        a, b = _net(seed=5), _net(seed=6)
        same = a.n_edges == b.n_edges and np.array_equal(a.edges_u, b.edges_u) and np.array_equal(
            a.edges_v, b.edges_v
        )
        assert not same

    def test_single_domain_single_node(self):
        p = TransitStubParams(1, 1, 1, 4)
        net = generate_transit_stub(p, _rng())
        assert net.n == 5
        assert nx.is_connected(_to_nx(net))

    def test_no_stub_domains(self):
        p = TransitStubParams(2, 3, 0, 1)
        net = generate_transit_stub(p, _rng())
        assert net.n == 6
        assert len(net.stub_hosts) == 0
        assert nx.is_connected(_to_nx(net))

    def test_mean_link_latency(self):
        net = _net()
        assert net.mean_link_latency() == pytest.approx(float(np.mean(net.edges_w)))

    def test_adjacency_symmetric(self):
        net = _net()
        adj = net.adjacency()
        assert (adj != adj.T).nnz == 0

    def test_validate_passes_on_generated(self):
        _net().validate()  # must not raise

    def test_validate_catches_self_loop(self):
        net = _net()
        bad = PhysicalNetwork(
            n=net.n,
            edges_u=np.array([0]),
            edges_v=np.array([0]),
            edges_w=np.array([1.0]),
            tier=net.tier,
            domain=net.domain,
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_catches_bad_latency(self):
        net = _net()
        bad = PhysicalNetwork(
            n=net.n,
            edges_u=np.array([0]),
            edges_v=np.array([1]),
            edges_w=np.array([-5.0]),
            tier=net.tier,
            domain=net.domain,
        )
        with pytest.raises(ValueError):
            bad.validate()
