"""Waxman flat random topology."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim.rng import RngRegistry
from repro.topology.latency import LatencyOracle
from repro.topology.waxman import WaxmanParams, generate_waxman


def _net(n=100, seed=0, **kw):
    return generate_waxman(WaxmanParams(n=n, **kw), RngRegistry(seed).stream("wax"))


class TestParams:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(n=1), dict(n=10, alpha=0.0), dict(n=10, beta=0.0), dict(n=10, ms_per_unit=0.0)],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WaxmanParams(**kwargs)


class TestGeneration:
    def test_connected(self):
        net = _net()
        g = nx.Graph()
        g.add_nodes_from(range(net.n))
        g.add_edges_from(zip(net.edges_u.tolist(), net.edges_v.tolist()))
        assert nx.is_connected(g)

    def test_connected_even_when_sparse(self):
        net = _net(n=60, alpha=0.05, beta=0.05)
        g = nx.Graph()
        g.add_nodes_from(range(net.n))
        g.add_edges_from(zip(net.edges_u.tolist(), net.edges_v.tolist()))
        assert nx.is_connected(g)

    def test_all_nodes_are_stub_tier(self):
        net = _net()
        assert len(net.stub_hosts) == net.n

    def test_latencies_positive_and_bounded(self):
        net = _net()
        assert np.all(net.edges_w >= 1.0)
        assert np.all(net.edges_w <= 100.0 * np.sqrt(2.0) + 1e-9)

    def test_short_links_dominate(self):
        """Waxman's point: edge probability decays with distance."""
        net = _net(n=200)
        median_latency = np.median(net.edges_w)
        assert median_latency < 0.5 * 100.0  # mostly short links

    def test_deterministic(self):
        a, b = _net(seed=3), _net(seed=3)
        assert np.array_equal(a.edges_u, b.edges_u)
        assert np.array_equal(a.edges_w, b.edges_w)

    def test_oracle_over_waxman(self):
        net = _net()
        hosts = RngRegistry(1).stream("m").choice(net.n, size=30, replace=False)
        oracle = LatencyOracle(net, hosts)
        assert np.all(np.isfinite(oracle.matrix))

    def test_prop_g_improves_on_waxman(self):
        """PROP's benefit is not a transit-stub artifact."""
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator
        from repro.overlay.gnutella import GnutellaOverlay

        net = _net(n=200)
        rngs = RngRegistry(2)
        hosts = rngs.stream("m").choice(net.n, size=80, replace=False)
        oracle = LatencyOracle(net, hosts)
        ov = GnutellaOverlay.build(oracle, rngs.stream("g"), min_degree=3)
        before = ov.mean_logical_edge_latency()
        sim = Simulator()
        PROPEngine(ov, PROPConfig(policy="G"), sim, rngs).start()
        sim.run_until(1800.0)
        assert ov.mean_logical_edge_latency() < 0.9 * before
