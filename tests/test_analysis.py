"""Analysis package: summaries, comparisons, and the CLI front-ends."""

import pytest

from repro.analysis.compare import compare_results, summarize_result
from repro.cli import main
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.persistence import save_result

FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=600.0,
    sample_interval=300.0,
    lookups_per_sample=50,
)


@pytest.fixture(scope="module")
def plain():
    return run_experiment(ExperimentConfig(**FAST))


@pytest.fixture(scope="module")
def optimized():
    return run_experiment(ExperimentConfig(prop=PROPConfig(policy="G"), **FAST))


class TestCompare:
    def test_optimized_wins_lookup(self, plain, optimized):
        report = compare_results(plain, optimized, label_a="plain", label_b="PROP-G")
        assert report.winner("lookup_latency") == "B better"

    def test_self_comparison_is_tie(self, plain):
        report = compare_results(plain, plain)
        assert all(m.verdict == "tie" for m in report.metrics)

    def test_ratio_and_delta(self, plain, optimized):
        report = compare_results(plain, optimized)
        m = next(x for x in report.metrics if x.metric == "lookup_latency")
        assert m.ratio == pytest.approx(m.b_final / m.a_final)
        assert m.delta == pytest.approx(m.b_final - m.a_final)

    def test_unknown_metric_rejected(self, plain):
        with pytest.raises(KeyError):
            compare_results(plain, plain).winner("qps")

    def test_to_text(self, plain, optimized):
        text = compare_results(plain, optimized, label_a="x", label_b="y").to_text()
        assert "A = x" in text and "verdict" in text


class TestSummarize:
    def test_contains_metrics(self, optimized):
        text = summarize_result(optimized, label="demo")
        assert "== demo ==" in text
        assert "lookup_latency" in text and "link_stretch" in text

    def test_works_on_stored_result(self, optimized, tmp_path):
        from repro.harness.persistence import load_result

        stored = load_result(save_result(optimized, tmp_path / "r.json"))
        text = summarize_result(stored)
        assert "final/initial" in text


class TestCliIntegration:
    def test_run_save_show_compare(self, tmp_path, capsys):
        common = ["run", "--preset", "ts-small", "--n", "60", "--duration", "300",
                  "--sample-interval", "150", "--lookups", "30"]
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        assert main(common + ["--save", a]) == 0
        assert main(common + ["--policy", "G", "--save", b]) == 0
        capsys.readouterr()

        assert main(["show", a]) == 0
        out = capsys.readouterr().out
        assert "final/initial" in out

        assert main(["compare", a, b]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "B better" in out or "tie" in out
