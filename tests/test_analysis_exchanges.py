"""Exchange-log analytics."""

import numpy as np
import pytest

from repro.analysis.exchanges import exchange_rate, exchange_stats, gain_captured_by
from repro.core.protocol import ExchangeRecord


def _rec(t, u=0, v=1, var=10.0):
    return ExchangeRecord(time=t, u=u, v=v, var=var, policy="G", traded=3)


class TestStats:
    def test_basic(self):
        log = [_rec(10.0, var=5.0), _rec(20.0, u=2, v=3, var=15.0), _rec(30.0, var=10.0)]
        s = exchange_stats(log)
        assert s.count == 3
        assert s.total_var == pytest.approx(30.0)
        assert s.mean_var == pytest.approx(10.0)
        assert s.first_time == 10.0 and s.last_time == 30.0
        # slots 0 and 1 each appear twice
        assert s.most_active_count == 2
        assert s.most_active_slot in (0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exchange_stats([])


class TestRate:
    def test_binning(self):
        log = [_rec(5.0), _rec(15.0), _rec(16.0), _rec(25.0)]
        edges, rates = exchange_rate(log, bin_seconds=10.0)
        assert np.allclose(edges, [10.0, 20.0, 30.0])
        assert np.allclose(rates, [0.1, 0.2, 0.1])

    def test_until_extends(self):
        log = [_rec(5.0)]
        edges, rates = exchange_rate(log, bin_seconds=10.0, until=50.0)
        assert edges[-1] == 50.0
        assert np.allclose(rates[1:], 0.0)

    def test_invalid_bin_rejected(self):
        with pytest.raises(ValueError):
            exchange_rate([_rec(1.0)], bin_seconds=0.0)


class TestGainCaptured:
    def test_fraction(self):
        log = [_rec(10.0, var=30.0), _rec(100.0, var=10.0)]
        assert gain_captured_by(log, 50.0) == pytest.approx(0.75)
        assert gain_captured_by(log, 200.0) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gain_captured_by([], 10.0)


class TestOnRealRun:
    def test_engine_log_analyzable(self, gnutella):
        from repro.core.config import PROPConfig
        from repro.core.protocol import PROPEngine
        from repro.netsim.engine import Simulator
        from repro.netsim.rng import RngRegistry

        sim = Simulator()
        eng = PROPEngine(gnutella, PROPConfig(policy="G"), sim, RngRegistry(4))
        eng.start()
        sim.run_until(3600.0)
        log = eng.counters.exchange_log
        stats = exchange_stats(log)
        assert stats.count == eng.counters.exchanges
        # warm-up front-loading: most gain lands in the first 10 rounds
        assert gain_captured_by(log, 600.0) > 0.5
        edges, rates = exchange_rate(log, bin_seconds=600.0, until=3600.0)
        assert rates[0] > rates[-1]
