"""PIS: landmark vectors and locality of the produced embedding."""

import numpy as np
import pytest

from repro.baselines.pis import landmark_vectors, pis_embedding
from repro.netsim.rng import RngRegistry
from repro.overlay.chord import ChordOverlay


def test_landmark_vector_shape(small_oracle, rngs):
    vec = landmark_vectors(small_oracle, 4, rngs.stream("pis"))
    assert vec.shape == (small_oracle.n, 4)
    assert np.all(vec >= 0)


def test_landmark_count_validated(small_oracle, rngs):
    with pytest.raises(ValueError):
        landmark_vectors(small_oracle, 0, rngs.stream("pis"))
    with pytest.raises(ValueError):
        landmark_vectors(small_oracle, small_oracle.n + 1, rngs.stream("pis"))


def test_embedding_is_permutation(small_oracle, rngs):
    emb = pis_embedding(small_oracle, rngs.stream("pis"))
    assert sorted(emb) == list(range(small_oracle.n))


def test_embedding_deterministic(small_oracle):
    a = pis_embedding(small_oracle, RngRegistry(4).stream("pis"))
    b = pis_embedding(small_oracle, RngRegistry(4).stream("pis"))
    assert np.array_equal(a, b)


def test_ring_neighbors_closer_than_random(small_oracle):
    """PIS consecutive-slot hosts must be physically closer on average
    than a random embedding's — the whole point of identifier selection."""
    rngs = RngRegistry(4)
    emb = pis_embedding(small_oracle, rngs.stream("pis"))
    mat = small_oracle.matrix

    def ring_cost(embedding):
        e = np.asarray(embedding)
        nxt = np.roll(e, -1)
        return float(mat[e, nxt].mean())

    random_emb = rngs.stream("rand").permutation(small_oracle.n)
    assert ring_cost(emb) < ring_cost(random_emb)


def test_pis_chord_has_lower_link_stretch(small_oracle):
    """A Chord ring built on the PIS embedding beats a random one."""
    rngs = RngRegistry(4)
    emb = pis_embedding(small_oracle, rngs.stream("pis"))
    pis_ring = ChordOverlay.build(small_oracle, rngs.fresh("chord"), embedding=emb)
    rand_ring = ChordOverlay.build(small_oracle, rngs.fresh("chord"))
    # successor links dominate: compare successor-link mean latency
    def succ_cost(ov):
        return float(np.mean([ov.latency(i, (i + 1) % ov.n_slots) for i in range(ov.n_slots)]))

    assert succ_cost(pis_ring) < succ_cost(rand_ring)
