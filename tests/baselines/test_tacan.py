"""Topologically-aware CAN: landmark join points and their effect."""

import numpy as np
import pytest

from repro.baselines.tacan import tacan_join_points
from repro.netsim.rng import RngRegistry
from repro.overlay.can import CANOverlay


def test_points_shape_and_range(small_oracle, rngs):
    pts = tacan_join_points(small_oracle, rngs.stream("tacan"), dims=2)
    assert pts.shape == (small_oracle.n, 2)
    assert np.all(pts >= 0.0) and np.all(pts < 1.0)


def test_points_deterministic(small_oracle):
    a = tacan_join_points(small_oracle, RngRegistry(3).stream("t"), dims=2)
    b = tacan_join_points(small_oracle, RngRegistry(3).stream("t"), dims=2)
    assert np.array_equal(a, b)


def test_validation(small_oracle, rngs):
    with pytest.raises(ValueError):
        tacan_join_points(small_oracle, rngs.stream("t"), dims=0)
    with pytest.raises(ValueError):
        tacan_join_points(small_oracle, rngs.stream("t"), jitter=0.7)


def test_can_accepts_join_points(small_oracle, rngs):
    pts = tacan_join_points(small_oracle, rngs.stream("tacan"), dims=2)
    can = CANOverlay.build(small_oracle, rngs.stream("can"), dims=2, join_points=pts)
    assert can.total_zone_volume() == pytest.approx(1.0)
    assert can.is_connected()


def test_join_points_shape_validated(small_oracle, rngs):
    with pytest.raises(ValueError):
        CANOverlay.build(
            small_oracle, rngs.stream("can"), dims=2,
            join_points=np.zeros((3, 2)),
        )


def test_tacan_reduces_neighbor_latency(small_oracle):
    """The whole point: zone neighbors become physically close."""
    rngs = RngRegistry(9)
    plain = CANOverlay.build(small_oracle, rngs.fresh("can"), dims=2)
    pts = tacan_join_points(small_oracle, rngs.stream("lm"), dims=2)
    aware = CANOverlay.build(small_oracle, rngs.fresh("can"), dims=2, join_points=pts)
    assert aware.mean_logical_edge_latency() < plain.mean_logical_edge_latency()


def test_tacan_routing_still_correct(small_oracle, rngs):
    pts = tacan_join_points(small_oracle, rngs.stream("tacan"), dims=2)
    can = CANOverlay.build(small_oracle, rngs.stream("can"), dims=2, join_points=pts)
    rng = np.random.default_rng(0)
    for _ in range(30):
        src = int(rng.integers(0, can.n_slots))
        p = rng.random(2)
        assert can.route(src, p)[-1] == can.owner_of_point(p)
