"""LTM baseline: cut/add rules, degree floor, optimization effect."""

import numpy as np
import pytest

from repro.baselines.ltm import LTMConfig, LTMCounters, LTMOptimizer
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.overlay.base import Overlay


def _optimizer(overlay, sim=None, **cfg):
    sim = sim or Simulator()
    opt = LTMOptimizer(overlay, LTMConfig(**cfg), sim, RngRegistry(21))
    return opt, sim


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(round_interval=0.0), dict(detector_ttl=1), dict(min_degree=0)],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LTMConfig(**kwargs)


class TestRounds:
    def test_event_driven_rounds_happen(self, gnutella):
        opt, sim = _optimizer(gnutella, round_interval=60.0)
        opt.start()
        sim.run_until(600.0)
        assert opt.counters.rounds >= gnutella.n_slots  # several per node

    def test_double_start_rejected(self, gnutella):
        opt, _ = _optimizer(gnutella)
        opt.start()
        with pytest.raises(RuntimeError):
            opt.start()

    def test_reduces_mean_edge_latency(self, gnutella):
        before = gnutella.mean_logical_edge_latency()
        opt, sim = _optimizer(gnutella)
        opt.start()
        sim.run_until(1800.0)
        assert gnutella.mean_logical_edge_latency() < before
        assert opt.counters.cuts + opt.counters.adds > 0

    def test_stays_connected(self, gnutella):
        opt, sim = _optimizer(gnutella)
        opt.start()
        sim.run_until(1800.0)
        assert gnutella.is_connected()

    def test_degree_floor_respected(self, gnutella):
        opt, sim = _optimizer(gnutella, min_degree=3)
        opt.start()
        sim.run_until(1800.0)
        assert gnutella.min_degree() >= 3

    def test_detector_messages_counted(self, gnutella):
        opt, sim = _optimizer(gnutella)
        opt.start()
        sim.run_until(120.0)
        assert opt.counters.detector_messages > 0


class TestCutRule:
    def test_cut_requires_faster_detour(self, small_oracle):
        """A triangle where the direct link is fastest must not be cut."""
        # pick three members and find their pairwise latencies
        ov = Overlay(small_oracle, np.arange(6))
        # build a triangle plus pendant edges to satisfy min_degree guard
        for a, b in [(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5), (3, 4), (4, 5), (3, 5)]:
            ov.add_edge(a, b)
        d01 = ov.latency(0, 1)
        d02 = ov.latency(0, 2)
        d12 = ov.latency(1, 2)
        opt, _ = _optimizer(ov, min_degree=2)
        opt.run_round(0)
        # (0,1) may be cut only if the detour via 2 is faster leg-by-leg
        if max(d02, d12) >= d01:
            assert ov.has_edge(0, 1)

    def test_add_prefers_closest_two_hop(self, gnutella):
        u = 0
        two_hop = set()
        for x in gnutella.neighbors(u):
            two_hop |= gnutella.neighbors(x)
        two_hop -= gnutella.neighbors(u)
        two_hop.discard(u)
        if not two_hop:
            pytest.skip("node 0 has no two-hop candidates")
        closest = min(two_hop, key=lambda w: gnutella.latency(u, w))
        farthest_nbr = max(gnutella.latency(u, x) for x in gnutella.neighbors(u))
        opt, _ = _optimizer(gnutella)
        opt.run_round(u)
        if gnutella.latency(u, closest) < farthest_nbr:
            assert gnutella.has_edge(u, closest)


def test_counters_dataclass():
    c = LTMCounters()
    assert c.rounds == c.cuts == c.adds == c.detector_messages == 0


def test_ltm_rejected_on_structured_overlay(chord):
    with pytest.raises(ValueError):
        _optimizer(chord)
