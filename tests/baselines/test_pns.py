"""PNS Chord: proximity finger selection, routing correctness, refresh."""

import numpy as np
import pytest

from repro.baselines.pns import PNSChordOverlay
from repro.netsim.rng import RngRegistry
from repro.overlay.chord import ChordOverlay


@pytest.fixture()
def pns(small_oracle, rngs):
    return PNSChordOverlay.build(small_oracle, rngs.stream("pns"))


class TestFingerSelection:
    def test_routing_still_correct(self, pns):
        rng = np.random.default_rng(0)
        for _ in range(100):
            src = int(rng.integers(0, pns.n_slots))
            key = int(rng.integers(0, pns.space))
            assert pns.route(src, key)[-1] == pns.owner_of_key(key)

    def test_successor_always_kept(self, pns):
        for i in range(pns.n_slots):
            assert (i + 1) % pns.n_slots in pns.fingers[i]

    def test_fingers_cheaper_than_plain_chord(self, small_oracle):
        """PNS mean finger latency must beat plain Chord on the same ring."""
        plain = ChordOverlay.build(small_oracle, RngRegistry(5).stream("c"))
        pns = PNSChordOverlay(small_oracle, plain.embedding.copy(), plain.ids.copy(), plain.bits)

        def mean_finger_latency(ov):
            total, count = 0.0, 0
            for i in range(ov.n_slots):
                for j in ov.fingers[i]:
                    total += ov.latency(i, j)
                    count += 1
            return total / count

        assert mean_finger_latency(pns) < mean_finger_latency(plain)

    def test_fingers_stay_in_interval(self, pns):
        """Every non-successor finger must be a legal interval member
        (its id lies in some [id_i + 2^k, id_i + 2^(k+1)) interval)."""
        for i in range(0, pns.n_slots, 7):
            base = int(pns.ids[i])
            intervals = [
                ((base + (1 << k)) % pns.space, (base + (1 << (k + 1))) % pns.space)
                for k in range(pns.bits)
            ]
            for j in pns.fingers[i]:
                if j == (i + 1) % pns.n_slots:
                    continue
                idj = int(pns.ids[j])
                ok = any(
                    (lo <= idj < hi) if lo < hi else (idj >= lo or idj < hi)
                    for lo, hi in intervals
                )
                assert ok


class TestRefresh:
    def test_refresh_tracks_embedding_changes(self, pns):
        """After embedding churn, refresh re-optimizes finger latency."""
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b = rng.integers(0, pns.n_slots, size=2)
            if a != b:
                pns.swap_embedding(int(a), int(b))
        def mean_finger_latency(ov):
            total, count = 0.0, 0
            for i in range(ov.n_slots):
                for j in ov.fingers[i]:
                    total += ov.latency(i, j)
                    count += 1
            return total / count

        stale = mean_finger_latency(pns)
        pns.refresh()
        assert mean_finger_latency(pns) <= stale

    def test_refresh_keeps_routing_correct(self, pns):
        pns.swap_embedding(0, 5)
        pns.refresh()
        rng = np.random.default_rng(2)
        for _ in range(50):
            src = int(rng.integers(0, pns.n_slots))
            key = int(rng.integers(0, pns.space))
            assert pns.route(src, key)[-1] == pns.owner_of_key(key)

    def test_refresh_keeps_connectivity(self, pns):
        pns.refresh()
        assert pns.is_connected()
