"""Causal span trees: assembly, liveness flags, critical path, CLI.

The synthetic-stream tests pin the assembler's semantics exactly; the
fixture-backed tests (30%-loss FaultyTransport run, session-scoped)
assert the span-tree invariants hold under real fault injection; the
CLI tests pin the exit-code discipline on a synthetically truncated
trace.
"""

import json

import pytest

from tests.obs.conftest import LOSSY_TRACED
from repro.harness.sweep import run_sweep
from repro.obs.__main__ import main as obs_main
from repro.obs.events import SpanEndEvent, SpanStartEvent
from repro.obs.spans import (
    SpanAssembler,
    analysis_to_dict,
    assemble_spans,
    critical_path,
    path_totals,
    render_critical_paths,
    render_span_trees,
)
from repro.obs.trace import write_events_jsonl


def _start(t, trace, span, parent, name, node=0):
    return SpanStartEvent(time=t, trace=trace, span=span, parent=parent,
                          name=name, node=node)


def _end(t, trace, span, status="ok"):
    return SpanEndEvent(time=t, trace=trace, span=span, status=status)


#: One complete probe-cycle-shaped trace: root -> msg -> proc, with the
#: proc span closing before the msg span (transports close the message
#: span after the handler ran).
COMPLETE = [
    _start(0.0, 1, 1, -1, "cycle", node=3),
    _start(0.0, 1, 2, 1, "msg:WALK", node=3),
    _start(0.4, 1, 3, 2, "proc:WALK", node=7),
    _end(0.4, 1, 3),
    _end(0.4, 1, 2),
    _end(1.0, 1, 1, status="ok"),
]


class TestAssembler:
    def test_complete_tree(self):
        analysis = assemble_spans(COMPLETE)
        assert analysis.clean
        (tree,) = analysis.trees
        assert tree.complete and tree.n_spans == 3 and tree.depth == 3
        assert tree.root.name == "cycle" and tree.root.status == "ok"
        assert analysis.root_status_counts == {"ok": 1}

    def test_child_may_outlive_parent(self):
        """Causality, not containment: a NOTIFY fan-out keeps running
        after the cycle root closed; the tree completes only when the
        last descendant does."""
        events = [
            _start(0.0, 1, 1, -1, "cycle"),
            _start(0.9, 1, 2, 1, "msg:NOTIFY"),
            _end(1.0, 1, 1),
        ]
        assembler = SpanAssembler()
        for ev in events[:3]:
            assembler.on_event(ev)
        assert assembler.open_traces == 1  # root closed, child still open
        assembler.on_event(_end(1.5, 1, 2))
        assert assembler.open_traces == 0  # now it sealed
        assembler.finish(2.0)
        (tree,) = assembler.result().trees
        assert tree.complete
        assert tree.root.children[0].end == 1.5 > tree.root.end

    def test_streaming_mode_keeps_only_counters(self):
        seen = []
        assembler = SpanAssembler(keep_trees=False, on_tree=seen.append)
        for ev in COMPLETE:
            assembler.on_event(ev)
        assert assembler.completed == 1 and assembler.open_traces == 0
        assert len(seen) == 1 and seen[0].complete
        assembler.finish(2.0)
        assert assembler.result().trees == []  # nothing buffered

    def test_orphan_root_fails_the_analysis(self):
        analysis = assemble_spans(COMPLETE[:-1])  # root never closes
        assert analysis.orphans == [(1, 1)]
        assert not analysis.clean
        (tree,) = analysis.trees
        assert not tree.complete

    def test_half_open_non_root_is_reported_not_failed(self):
        events = [
            _start(0.0, 1, 1, -1, "cycle"),
            _start(0.1, 1, 2, 1, "msg:WALK"),
            _end(1.0, 1, 1),
        ]
        analysis = assemble_spans(events)
        assert analysis.half_open == [(1, 2)]
        assert analysis.clean  # real loss / horizon cutoff is not a bug
        assert not analysis.trees[0].complete

    def test_unmatched_end_and_double_close_are_bugs(self):
        events = [
            _start(0.0, 1, 1, -1, "cycle"),
            _start(0.1, 1, 2, 1, "msg:WALK"),
            _end(0.4, 1, 2),
            _end(0.5, 1, 2),  # closed twice while the trace is open
            _end(1.0, 1, 1),
            _end(1.2, 9, 99),  # end for a span that never started
        ]
        analysis = assemble_spans(events)
        assert analysis.double_closed == [(1, 2)]
        assert analysis.unmatched_ends == [(9, 99)]
        assert not analysis.clean

    def test_unknown_parent_is_detached_but_visible(self):
        events = [
            _start(0.0, 1, 1, -1, "cycle"),
            _start(0.1, 1, 5, 404, "proc:WALK"),  # parent never appears
            _end(0.2, 1, 5),
            _end(1.0, 1, 1),
        ]
        analysis = assemble_spans(events)
        assert analysis.detached == [(1, 5)]
        assert not analysis.clean
        # the span still renders under the root rather than vanishing
        assert analysis.trees[0].root.children[0].span == 5

    def test_gauges_track_open_state(self):
        assembler = SpanAssembler()
        assembler.on_event(COMPLETE[0])
        assembler.on_event(COMPLETE[1])
        assert assembler.open_spans == 2 and assembler.open_traces == 1

    def test_result_before_finish_raises(self):
        with pytest.raises(RuntimeError, match="finish"):
            SpanAssembler().result()


class TestCriticalPath:
    def _tree(self):
        events = [
            _start(0.0, 1, 1, -1, "cycle", node=0),
            _start(0.0, 1, 2, 1, "msg:WALK", node=0),
            _start(4.0, 1, 3, 2, "proc:WALK", node=5),
            _end(4.0, 1, 3),
            _end(4.0, 1, 2),
            _start(7.0, 1, 4, 1, "timer:vote", node=0),
            _end(7.0, 1, 4),
            _start(7.0, 1, 5, 4, "msg:EXCHANGE_PREPARE", node=0),
            _end(9.0, 1, 5),
            _end(10.0, 1, 1, status="ok"),
        ]
        (tree,) = assemble_spans(events).trees
        return tree

    def test_segments_partition_the_root_window(self):
        tree = self._tree()
        segments = critical_path(tree)
        assert segments[0].start == tree.root.start
        assert segments[-1].end == tree.root.end
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end == nxt.start  # no gaps, no overlap
        assert sum(s.duration for s in segments) == pytest.approx(10.0)

    def test_timer_gap_attribution(self):
        totals = path_totals(critical_path(self._tree()))
        # the 0..7 gap ends in timer:vote => back-off, not generic wait
        assert totals["timer"] == pytest.approx(7.0)
        assert totals["transit"] == pytest.approx(2.0)  # EXCHANGE_PREPARE
        assert totals["wait"] == pytest.approx(1.0)  # 9..10 at root
        assert totals["process"] == pytest.approx(0.0)

    def test_open_root_rejected(self):
        analysis = assemble_spans(COMPLETE[:-1])
        with pytest.raises(ValueError, match="never closed"):
            critical_path(analysis.trees[0])


class TestRendering:
    def test_span_tree_render(self):
        text = render_span_trees(assemble_spans(COMPLETE))
        assert "1 span trees (1 complete)" in text
        assert "cycle @n3" in text and "proc:WALK @n7" in text

    def test_critpath_render(self):
        text = render_critical_paths(assemble_spans(COMPLETE))
        assert "1 complete trees" in text and "transit" in text

    def test_analysis_dict_shape(self):
        data = analysis_to_dict(assemble_spans(COMPLETE))
        assert data["clean"] and data["trees"] == 1 == data["complete"]
        assert set(data["critical_path_seconds"]) == {
            "transit", "process", "timer", "wait",
        }


class TestFaultInvariants:
    """Satellite: span-tree invariants under 30% injected loss."""

    def test_every_root_closes_or_is_flagged_orphan(self, lossy_traced_result):
        analysis = assemble_spans(lossy_traced_result.trace)
        assert analysis.trees  # the run actually probed
        for tree in analysis.trees:
            closed = tree.root.end is not None
            flagged = (tree.trace, tree.root.span) in analysis.orphans
            assert closed or flagged
        # the engine's finalize_trace closes every in-flight root, so a
        # faithful trace has no orphans at all — loss notwithstanding
        assert analysis.orphans == []
        assert analysis.clean

    def test_injected_drops_close_their_spans(self, lossy_traced_result):
        analysis = assemble_spans(lossy_traced_result.trace)

        def statuses(span):
            yield span.status
            for child in span.children:
                yield from statuses(child)

        seen = {s for t in analysis.trees for s in statuses(t.root)}
        assert "drop" in seen  # FaultyTransport losses are observable


class TestCliExitCodes:
    """Satellite: the analyzer CLI on a synthetically truncated trace."""

    def test_clean_trace_exits_zero(self, tmp_path, capsys):
        path = write_events_jsonl(COMPLETE, tmp_path / "t.jsonl")
        assert obs_main(["spans", str(path)]) == 0
        assert obs_main(["critpath", str(path)]) == 0
        capsys.readouterr()

    def test_truncated_trace_exits_one(self, tmp_path, capsys):
        # drop the tail of the stream: the root never closes
        path = write_events_jsonl(COMPLETE[:-1], tmp_path / "t.jsonl")
        assert obs_main(["spans", str(path)]) == 1
        assert "ORPHAN" in capsys.readouterr().out
        assert obs_main(["critpath", str(path)]) == 1
        capsys.readouterr()

    def test_json_out_artifact(self, tmp_path, capsys):
        trace = write_events_jsonl(COMPLETE, tmp_path / "t.jsonl")
        out = tmp_path / "analysis.json"
        assert obs_main(["spans", str(trace), "--json-out", str(out)]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["clean"] and data["orphans"] == 0


class TestDeterminism:
    """Same seed => byte-identical span-tree output, serial vs pooled."""

    def test_serial_and_parallel_span_output_identical(self):
        config = LOSSY_TRACED.but(duration=300.0, sample_interval=150.0)
        serial = run_sweep({"run": config}, measure_lookups=False, workers=1)
        pooled = run_sweep({"run": config}, measure_lookups=False, workers=2)
        a = assemble_spans(serial["run"].trace)
        b = assemble_spans(pooled["run"].trace)
        assert render_span_trees(a, limit=None) == render_span_trees(b, limit=None)
        assert render_critical_paths(a, limit=None) == render_critical_paths(
            b, limit=None
        )
        assert analysis_to_dict(a) == analysis_to_dict(b)
