"""Tracer / NullTracer behavior."""

from repro.obs.events import ProbeEvent
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class TestNullTracer:
    def test_disabled_and_noop(self):
        t = NullTracer()
        assert t.enabled is False
        t.emit(ProbeEvent, u=1, s=2, cycle=0)  # must not raise, must not record

    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestTracer:
    def test_stamps_events_with_injected_clock(self):
        now = [0.0]
        t = Tracer(clock=lambda: now[0])
        t.emit(ProbeEvent, u=1, s=2, cycle=0)
        now[0] = 7.5
        t.emit(ProbeEvent, u=3, s=4, cycle=1)
        assert [ev.time for ev in t.events] == [0.0, 7.5]
        assert t.events[1] == ProbeEvent(time=7.5, u=3, s=4, cycle=1)

    def test_default_clock_is_zero(self):
        t = Tracer()
        t.emit(ProbeEvent, u=1, s=2, cycle=0)
        assert t.events[0].time == 0.0

    def test_len_counts_events(self):
        t = Tracer()
        assert len(t) == 0
        t.emit(ProbeEvent, u=1, s=2, cycle=0)
        assert len(t) == 1

    def test_write_jsonl_creates_parents(self, tmp_path):
        t = Tracer()
        t.emit(ProbeEvent, u=1, s=2, cycle=0)
        out = t.write_jsonl(tmp_path / "deep" / "nested" / "trace.jsonl")
        assert out.exists()
        assert out.read_text() == t.to_jsonl()

    def test_instrumentation_guard_pattern(self):
        """The site-level contract: guard on .enabled, emit only when on."""
        t = Tracer()
        if t.enabled:
            t.emit(ProbeEvent, u=9, s=9, cycle=9)
        assert len(t) == 1
        if NULL_TRACER.enabled:  # pragma: no cover - must not trigger
            raise AssertionError("NULL_TRACER must be disabled")
