"""Monitor detectors on crafted traces: plateau, efficacy, thrash."""

import pytest

from repro.obs.events import (
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangeTimeoutEvent,
    ProbeEvent,
    VarCollectEvent,
)
from repro.obs.monitor import (
    ConvergenceMonitor,
    ExchangeEfficacy,
    ThrashDetector,
    format_status,
)


def commit(t, u, v, var, xid=-1):
    return ExchangeCommitEvent(time=t, xid=xid, u=u, v=v, var=var, traded=1)


def collect(t, u, v, var, cycle=0):
    return VarCollectEvent(time=t, u=u, v=v, cycle=cycle, var=var, policy="G")


def probe(t, cycle):
    return ProbeEvent(time=t, u=0, s=1, cycle=cycle)


class TestExchangeEfficacy:
    def test_commit_resolved_by_next_var_collect(self):
        eff = ExchangeEfficacy()
        eff.on_event(commit(1.0, 3, 7, var=50.0))
        eff.on_event(collect(2.0, 7, 3, var=40.0))  # reversed order, lower Var
        assert (eff.commits, eff.resolved, eff.effective) == (1, 1, 1)
        assert eff.efficacy == 1.0

    def test_ineffective_commit(self):
        eff = ExchangeEfficacy()
        eff.on_event(commit(1.0, 3, 7, var=50.0))
        eff.on_event(collect(2.0, 3, 7, var=60.0))  # Var got worse
        assert eff.efficacy == 0.0

    def test_unresolved_commits_count_neither_way(self):
        eff = ExchangeEfficacy()
        eff.on_event(commit(1.0, 3, 7, var=50.0))
        eff.on_event(collect(2.0, 1, 2, var=10.0))  # different pair
        assert eff.resolved == 0
        assert eff.pending == 1
        assert eff.efficacy is None

    def test_only_first_collect_resolves(self):
        eff = ExchangeEfficacy()
        eff.on_event(commit(1.0, 3, 7, var=50.0))
        eff.on_event(collect(2.0, 3, 7, var=40.0))
        eff.on_event(collect(3.0, 3, 7, var=999.0))  # already resolved
        assert (eff.resolved, eff.effective) == (1, 1)


class TestThrashDetector:
    def test_swap_back_within_k_cycles_is_a_thrash(self):
        thrash = ThrashDetector(k=3)
        thrash.on_event(probe(1.0, cycle=10))
        thrash.on_event(commit(1.0, 3, 7, var=50.0))
        thrash.on_event(probe(2.0, cycle=12))
        thrash.on_event(commit(2.0, 7, 3, var=48.0))  # same pair, 2 cycles on
        assert thrash.thrashes == 1
        assert thrash.thrash_pairs == [(3, 7)]

    def test_recommit_beyond_k_cycles_is_clean(self):
        thrash = ThrashDetector(k=3)
        thrash.on_event(probe(1.0, cycle=10))
        thrash.on_event(commit(1.0, 3, 7, var=50.0))
        thrash.on_event(probe(2.0, cycle=20))
        thrash.on_event(commit(2.0, 3, 7, var=48.0))
        assert thrash.thrashes == 0

    def test_distinct_pairs_never_thrash(self):
        thrash = ThrashDetector(k=3)
        thrash.on_event(commit(1.0, 3, 7, var=50.0))
        thrash.on_event(commit(1.5, 4, 8, var=50.0))
        assert thrash.thrashes == 0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            ThrashDetector(k=0)


class TestConvergenceMonitor:
    def test_plateau_detected_on_settling_series(self):
        monitor = ConvergenceMonitor(600.0)
        for i, latency in enumerate([100.0, 90.0, 80.0, 79.9, 79.8, 79.85, 79.8]):
            monitor.on_sample(i * 60.0, latency)
        # stable from the 80.0 sample on: every later step is < 1% of it
        assert monitor.plateau_time == pytest.approx(120.0)

    def test_no_plateau_on_drifting_series(self):
        monitor = ConvergenceMonitor(600.0)
        for i in range(8):
            monitor.on_sample(i * 60.0, 100.0 - 10.0 * i)
        assert monitor.plateau_time is None

    def test_exchange_outcome_tallies(self):
        monitor = ConvergenceMonitor(600.0)
        monitor.on_event(commit(1.0, 1, 2, var=5.0))
        monitor.on_event(ExchangeAbortEvent(time=2.0, xid=1, u=3, v=4, reason="veto"))
        monitor.on_event(ExchangeTimeoutEvent(time=3.0, xid=2, u=5, v=6))
        status = monitor.status()
        assert (status.commits, status.aborts, status.timeouts) == (1, 1, 1)

    def test_phase_tracks_warmup_boundary(self):
        monitor = ConvergenceMonitor(600.0, warmup_end=300.0)
        monitor.on_event(probe(100.0, cycle=1))
        assert monitor.status().phase == "warmup"
        monitor.on_event(probe(400.0, cycle=2))
        assert monitor.status().phase == "maintenance"
        monitor.finish(600.0)
        assert monitor.status().phase == "done"
        assert monitor.sim_time == 600.0

    def test_format_status_line(self):
        monitor = ConvergenceMonitor(600.0, warmup_end=300.0)
        monitor.on_event(commit(120.0, 1, 2, var=5.0))
        monitor.on_sample(120.0, 82.3)
        line = format_status(monitor.status(), eta_seconds=42.0)
        assert line == "[warmup]  t=120/600s  lat 82.3ms  exch 1c/0a/0t  eta ~42s"

    def test_format_status_shows_thrash_and_efficacy(self):
        monitor = ConvergenceMonitor(600.0)
        monitor.on_event(probe(1.0, cycle=1))
        monitor.on_event(commit(1.0, 1, 2, var=5.0))
        monitor.on_event(collect(2.0, 1, 2, var=4.0, cycle=2))
        monitor.on_event(commit(2.5, 1, 2, var=4.0))
        line = format_status(monitor.status())
        assert "eff 1.00" in line
        assert "thrash 1" in line
