"""Telemetry exporter: canonical JSONL records, lazy file, round trip."""

import json

from repro.obs.telemetry import (
    TelemetryExporter,
    TelemetrySnapshot,
    load_telemetry,
)

SNAP = TelemetrySnapshot(
    time=60.25,
    seq=0,
    metrics={"prop.probes": 12, "prop.var": {"count": 3, "sum": 90.0}},
    open_spans=4,
    open_traces=2,
    spans_completed=7,
    wire_bytes_out={1: 512, 0: 256},
    wire_bytes_in={0: 300},
)


class TestSnapshot:
    def test_json_line_is_canonical(self):
        line = SNAP.to_json_line()
        obj = json.loads(line)
        assert line == json.dumps(obj, sort_keys=True, separators=(",", ":"))

    def test_dict_shape(self):
        data = SNAP.to_dict()
        assert data["time"] == 60.25 and data["seq"] == 0
        assert data["spans"] == {"open": 4, "open_traces": 2, "completed": 7}
        # peer keys stringify and sort for stable JSON
        assert list(data["wire_bytes"]["out"]) == ["0", "1"]
        assert data["metrics"]["prop.probes"] == 12

    def test_loop_surfaces_default_empty(self):
        data = SNAP.to_dict()
        assert data["loop_lag"] == {}
        assert data["callbacks"] == {}

    def test_loop_lag_and_callbacks_serialize_sorted(self):
        snap = TelemetrySnapshot(
            time=30.0,
            seq=2,
            metrics={},
            loop_lag={"samples": 9, "max_ms": 1.5, "mean_ms": 0.2},
            callback_ms={3: {"WALK": 0.42, "NOTIFY": 0.1}, 1: {"WALK": 0.8}},
        )
        data = snap.to_dict()
        assert list(data["loop_lag"]) == ["max_ms", "mean_ms", "samples"]
        assert list(data["callbacks"]) == ["1", "3"]
        assert list(data["callbacks"]["3"]) == ["NOTIFY", "WALK"]
        # canonical line still round-trips
        assert json.loads(snap.to_json_line())["callbacks"]["3"]["WALK"] == 0.42


class TestExporter:
    def test_lazy_creation_and_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "telemetry.jsonl"
        exporter = TelemetryExporter(path)
        assert not path.exists()  # nothing written, nothing created
        exporter.write(SNAP)
        exporter.write(TelemetrySnapshot(time=120.0, seq=1, metrics={}))
        exporter.close()
        assert exporter.written == 2
        records = load_telemetry(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0] == SNAP.to_dict()

    def test_lines_flushed_while_open(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exporter = TelemetryExporter(path)
        exporter.write(SNAP)
        # readable mid-run without close(): the tail -f contract
        assert len(load_telemetry(path)) == 1
        exporter.close()

    def test_close_is_idempotent(self, tmp_path):
        exporter = TelemetryExporter(tmp_path / "t.jsonl")
        exporter.write(SNAP)
        exporter.close()
        exporter.close()
