"""Trace analysis: timeline reconstruction and the exactly-once invariant.

The acceptance check for the observability PR lives here: in a PROP-G
run over a 30%-loss FaultyTransport, every ``EXCHANGE_PREPARE`` in the
trace is accounted for as exactly one of COMMIT / ABORT / TIMEOUT.
"""

from collections import Counter

from repro.obs.analyze import (
    load_trace,
    reconstruct_timelines,
    render_timelines,
)
from repro.obs.events import (
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangePrepareEvent,
    ExchangeTimeoutEvent,
    MsgDeliverEvent,
    MsgTimeoutEvent,
    events_to_jsonl,
)


def _prepare(xid, t=1.0):
    return ExchangePrepareEvent(time=t, xid=xid, u=1, v=2, var=10.0)


class TestReconstruction:
    def test_each_outcome_kind_matches_its_prepare(self):
        events = [
            _prepare(1, t=1.0),
            _prepare(2, t=1.5),
            _prepare(3, t=2.0),
            ExchangeCommitEvent(time=3.0, xid=1, u=1, v=2, var=10.0, traded=4),
            ExchangeAbortEvent(time=3.5, xid=2, u=1, v=2, reason="stale"),
            ExchangeTimeoutEvent(time=4.0, xid=3, u=1, v=2),
        ]
        analysis = reconstruct_timelines(events)
        assert analysis.clean
        assert analysis.outcome_counts == {
            "commit": 1, "abort": 1, "timeout": 1, "half-open": 0,
        }
        by_xid = {tl.xid: tl for tl in analysis.timelines}
        assert by_xid[1].outcome == "commit"
        assert by_xid[1].resolution_seconds == 2.0
        assert by_xid[2].reason == "stale"
        assert by_xid[3].outcome == "timeout"

    def test_half_open_prepare_is_flagged(self):
        analysis = reconstruct_timelines([_prepare(5)])
        assert analysis.half_open == [5]
        assert not analysis.clean
        assert analysis.timelines[0].outcome == "half-open"
        assert analysis.timelines[0].resolution_seconds is None

    def test_double_resolution_is_flagged(self):
        events = [
            _prepare(1),
            ExchangeCommitEvent(time=2.0, xid=1, u=1, v=2, var=10.0, traded=4),
            ExchangeAbortEvent(time=3.0, xid=1, u=1, v=2, reason="late"),
        ]
        analysis = reconstruct_timelines(events)
        assert analysis.over_resolved == [1]
        assert not analysis.clean
        # first outcome wins the timeline
        assert analysis.timelines[0].outcome == "commit"

    def test_orphan_outcome_is_flagged(self):
        events = [ExchangeCommitEvent(time=2.0, xid=9, u=1, v=2, var=1.0, traded=1)]
        analysis = reconstruct_timelines(events)
        assert analysis.orphan_outcomes == [9]
        assert not analysis.clean

    def test_inline_events_are_excluded_from_matching(self):
        """xid = -1 commits/aborts come from the non-2PC engines."""
        events = [
            ExchangeCommitEvent(time=1.0, xid=-1, u=1, v=2, var=5.0, traded=4),
            ExchangeAbortEvent(time=2.0, xid=-1, u=3, v=4, reason="stale"),
        ]
        analysis = reconstruct_timelines(events)
        assert analysis.clean
        assert analysis.inline_commits == 1
        assert analysis.timelines == [] and analysis.orphan_outcomes == []

    def test_late_reply_detection(self):
        events = [
            MsgTimeoutEvent(time=5.0, kind="walk", u=1, tag=3),
            MsgDeliverEvent(time=6.0, mtype="VAR_REPLY", src=2, dst=1, tag=3),
            # different cycle: not late
            MsgDeliverEvent(time=6.5, mtype="VAR_REPLY", src=2, dst=1, tag=4),
        ]
        analysis = reconstruct_timelines(events)
        assert analysis.late_replies == [(6.0, 1, 3)]


class TestRendering:
    def test_summary_and_bug_lines(self):
        events = [
            _prepare(1),
            ExchangeCommitEvent(time=2.0, xid=1, u=1, v=2, var=10.0, traded=4),
            _prepare(2, t=3.0),
        ]
        text = render_timelines(reconstruct_timelines(events))
        assert "2 two-phase exchanges: 1 committed" in text
        assert "HALF-OPEN xids: [2]" in text

    def test_limit_truncates_table(self):
        events = []
        for xid in range(10):
            events.append(_prepare(xid, t=float(xid)))
            events.append(
                ExchangeCommitEvent(time=xid + 0.5, xid=xid, u=1, v=2,
                                    var=1.0, traded=1)
            )
        text = render_timelines(reconstruct_timelines(events), limit=3)
        assert "(showing first 3 of 10 timelines)" in text


class TestAcceptance:
    """ISSUE acceptance: exactly-once 2PC accounting under 30% loss."""

    def test_every_prepare_resolves_exactly_once(self, lossy_traced_result):
        analysis = reconstruct_timelines(lossy_traced_result.trace)
        prepares = [
            ev for ev in lossy_traced_result.trace
            if isinstance(ev, ExchangePrepareEvent)
        ]
        assert prepares, "a lossy 2PC run must propose exchanges"
        assert analysis.clean, (
            f"half-open={analysis.half_open} over={analysis.over_resolved} "
            f"orphans={analysis.orphan_outcomes}"
        )
        counts = analysis.outcome_counts
        assert counts["half-open"] == 0
        assert counts["commit"] + counts["abort"] + counts["timeout"] == len(
            {ev.xid for ev in prepares}
        )
        # under 30% loss some exchanges must fail, some must survive
        assert counts["commit"] > 0
        assert counts["abort"] + counts["timeout"] > 0

    def test_prepare_events_are_unique_per_xid(self, lossy_traced_result):
        xids = Counter(
            ev.xid for ev in lossy_traced_result.trace
            if isinstance(ev, ExchangePrepareEvent)
        )
        assert all(n == 1 for n in xids.values()), xids.most_common(3)

    def test_round_trips_through_jsonl_file(self, lossy_traced_result, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(events_to_jsonl(lossy_traced_result.trace), encoding="utf-8")
        analysis = reconstruct_timelines(load_trace(path))
        assert analysis.outcome_counts == reconstruct_timelines(
            lossy_traced_result.trace
        ).outcome_counts
