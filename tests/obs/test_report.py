"""RunReport: fingerprinting, assembly, persistence, rendering, diffing."""

import json

import pytest

from tests.obs.conftest import LOSSY_TRACED
from repro.obs.report import (
    REPORT_SCHEMA,
    build_run_report,
    config_fingerprint,
    diff_reports,
    load_report,
    render_markdown,
    save_report,
)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(LOSSY_TRACED) == config_fingerprint(LOSSY_TRACED)

    def test_sensitive_to_any_field(self):
        assert config_fingerprint(LOSSY_TRACED) != config_fingerprint(
            LOSSY_TRACED.but(seed=1)
        )
        assert config_fingerprint(LOSSY_TRACED) != config_fingerprint(
            LOSSY_TRACED.but(loss=0.2)
        )

    def test_short_hex(self):
        fp = config_fingerprint(LOSSY_TRACED)
        assert len(fp) == 16
        int(fp, 16)  # parses as hex


class TestBuild:
    def test_report_fields(self, lossy_traced_result):
        report = build_run_report(lossy_traced_result)
        assert report.fingerprint == config_fingerprint(LOSSY_TRACED)
        assert report.seed == 0
        assert report.duration == 600.0
        assert report.metrics["prop.probes"] > 0
        assert report.event_counts.get("PROBE", 0) > 0
        assert report.event_counts.get("EXCHANGE_PREPARE", 0) > 0

    def test_phase_breakdown_sums_to_duration(self, lossy_traced_result):
        report = build_run_report(lossy_traced_result)
        assert set(report.phases) == {"warmup", "maintenance"}
        assert sum(report.phases.values()) == pytest.approx(600.0)

    def test_profile_override(self, lossy_traced_result):
        report = build_run_report(
            lossy_traced_result, profile={"simulate": 1.25}
        )
        assert report.profile == {"simulate": 1.25}

    def test_samples_are_finite(self, lossy_traced_result):
        report = build_run_report(lossy_traced_result)
        assert "final_lookup_latency_ms" in report.samples
        for value in report.samples.values():
            assert value == value  # no NaNs survive


class TestPersistence:
    def test_save_load_round_trip(self, lossy_traced_result, tmp_path):
        report = build_run_report(lossy_traced_result)
        path = save_report(report, tmp_path / "sub" / "report.json")
        loaded = load_report(path)
        assert loaded.fingerprint == report.fingerprint
        assert loaded.metrics == json.loads(json.dumps(report.metrics))
        assert loaded.event_counts == report.event_counts

    def test_schema_tag_enforced(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/9"}), encoding="utf-8")
        with pytest.raises(ValueError, match=REPORT_SCHEMA.replace("/", ".")):
            load_report(bad)


class TestRendering:
    def test_markdown_sections(self, lossy_traced_result):
        text = render_markdown(build_run_report(lossy_traced_result))
        assert text.startswith("# Run report")
        for heading in ("## Phases", "## Headline samples", "## Metrics",
                        "## Trace events"):
            assert heading in text
        assert "prop.probes" in text
        assert "EXCHANGE_PREPARE" in text


class TestDiff:
    def test_identical_reports_have_no_differences(self, lossy_traced_result):
        report = build_run_report(lossy_traced_result)
        assert "(no metric differences)" in diff_reports(report, report)

    def test_diff_flags_changed_metrics_and_configs(self, lossy_traced_result):
        a = build_run_report(lossy_traced_result)
        b = build_run_report(lossy_traced_result)
        b.fingerprint = "0" * 16
        b.seed = 7
        b.metrics = dict(a.metrics, **{"prop.probes": a.metrics["prop.probes"] + 5})
        b.event_counts = dict(a.event_counts, PROBE=a.event_counts["PROBE"] + 1)
        text = diff_reports(a, b)
        assert "configs differ" in text
        assert "seeds differ" in text
        assert "prop.probes" in text
        assert "events.PROBE" in text
