"""Trace determinism: same config + seed => byte-identical JSONL.

The tracer keeps events in memory as picklable dataclasses and workers
ship them back whole, so the serialized trace must not depend on worker
count — the property that makes traces diffable artifacts.
"""

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.sweep import run_sweep
from repro.obs.events import events_to_jsonl
from repro.workloads.churn import ChurnConfig

TRACED = ExperimentConfig(
    seed=3,
    preset="ts-small",
    n_overlay=60,
    prop=PROPConfig(policy="G"),
    transport="sim",
    loss=0.2,
    trace=True,
    duration=450.0,
    sample_interval=150.0,
    lookups_per_sample=20,
)


def test_same_seed_is_byte_identical():
    a = run_experiment(TRACED, measure_lookups=False)
    b = run_experiment(TRACED, measure_lookups=False)
    assert a.trace and events_to_jsonl(a.trace) == events_to_jsonl(b.trace)


def test_serial_and_parallel_traces_are_byte_identical():
    serial = run_sweep({"run": TRACED}, measure_lookups=False, workers=1)
    pooled = run_sweep({"run": TRACED}, measure_lookups=False, workers=2)
    assert events_to_jsonl(serial["run"].trace) == events_to_jsonl(
        pooled["run"].trace
    )


def test_different_seeds_diverge():
    a = run_experiment(TRACED, measure_lookups=False)
    b = run_experiment(TRACED.but(seed=4), measure_lookups=False)
    assert events_to_jsonl(a.trace) != events_to_jsonl(b.trace)


def test_churn_events_are_deterministic_too():
    config = TRACED.but(
        transport=None, loss=0.0, n_spare=10,
        churn=ChurnConfig(rate_per_node=0.002),
    )
    a = run_experiment(config, measure_lookups=False)
    b = run_experiment(config, measure_lookups=False)
    text = events_to_jsonl(a.trace)
    assert text == events_to_jsonl(b.trace)
    assert '"e":"CHURN_LEAVE"' in text and '"e":"CHURN_JOIN"' in text
