"""Streaming consumers: windowed aggregators and the streaming tracer.

The contract under test is byte-determinism across delivery modes: the
same seed must yield identical consumer aggregates whether events are
buffered and replayed, streamed live, or streamed inside a worker
process — and streaming must hold **no** raw events (the O(windows)
memory bound is the acceptance criterion for long runs).
"""

import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import (
    ExperimentConfig,
    build_world,
    monitor_consumers,
    run_experiment,
)
from repro.harness.sweep import run_sweep
from repro.obs.events import ProbeEvent, VarCollectEvent
from repro.obs.live import (
    WindowedCounts,
    WindowedHistogram,
    WindowedMean,
    replay,
)
from repro.obs.trace import Tracer

TRACED = ExperimentConfig(
    seed=3,
    preset="ts-small",
    n_overlay=60,
    prop=PROPConfig(policy="G"),
    trace=True,
    duration=450.0,
    sample_interval=150.0,
    lookups_per_sample=20,
)


def _ev(t, cycle=0, var=1.0):
    return VarCollectEvent(time=t, u=1, v=2, cycle=cycle, var=var, policy="G")


class TestWindowing:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedCounts(0.0)

    def test_events_bucketed_by_sim_time(self):
        counts = WindowedCounts(10.0)
        for t in (0.0, 4.0, 9.99, 10.0, 25.0):
            counts.on_event(_ev(t))
        counts.finish(30.0)
        assert [(w.index, w.start, w.end) for w in counts.windows] == [
            (0, 0.0, 10.0),
            (1, 10.0, 20.0),
            (2, 20.0, 30.0),
        ]
        assert [w.value for w in counts.windows] == [
            {"VAR_COLLECT": 3},
            {"VAR_COLLECT": 1},
            {"VAR_COLLECT": 1},
        ]
        assert counts.totals() == {"VAR_COLLECT": 5}

    def test_empty_windows_are_skipped(self):
        counts = WindowedCounts(1.0)
        counts.on_event(_ev(0.5))
        counts.on_event(_ev(99.5))
        counts.finish(100.0)
        assert [w.index for w in counts.windows] == [0, 99]

    def test_out_of_order_event_raises(self):
        counts = WindowedCounts(10.0)
        counts.on_event(_ev(15.0))
        with pytest.raises(ValueError, match="nondecreasing"):
            counts.on_event(_ev(5.0))

    def test_finish_without_events_is_a_noop(self):
        counts = WindowedCounts(10.0)
        counts.finish(100.0)
        assert counts.windows == []

    def test_mean_filters_by_etype_and_field(self):
        mean = WindowedMean(10.0, "VAR_COLLECT", "var")
        mean.on_event(_ev(1.0, var=2.0))
        mean.on_event(_ev(2.0, var=4.0))
        mean.on_event(ProbeEvent(time=3.0, u=1, s=2, cycle=0))  # ignored
        mean.finish(10.0)
        (window,) = mean.windows
        assert window.value.count == 2
        assert window.value.mean == pytest.approx(3.0)

    def test_histogram_buckets_with_overflow(self):
        hist = WindowedHistogram(10.0, "VAR_COLLECT", "var", edges=[1.0, 2.0])
        for var in (0.5, 1.5, 99.0):
            hist.on_event(_ev(1.0, var=var))
        hist.finish(10.0)
        (window,) = hist.windows
        assert window.value.counts == (1, 1, 1)
        assert window.value.count == 3

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            WindowedHistogram(10.0, "VAR_COLLECT", "var", edges=[2.0, 1.0])


class TestStreamingTracer:
    def test_streaming_discards_events(self):
        tracer = Tracer(streaming=True, consumers=[WindowedCounts(10.0)])
        tracer.emit(ProbeEvent, u=0, s=1, cycle=0)
        assert len(tracer.events) == 0
        assert len(tracer) == 0

    def test_close_flushes_consumers_and_is_idempotent(self):
        counts = WindowedCounts(10.0)
        tracer = Tracer(streaming=True, consumers=[counts])
        tracer.emit(ProbeEvent, u=0, s=1, cycle=0)
        assert counts.windows == []  # window still open
        tracer.close(10.0)
        tracer.close(10.0)
        assert len(counts.windows) == 1

    def test_buffered_tracer_also_feeds_consumers(self):
        counts = WindowedCounts(10.0)
        tracer = Tracer(consumers=[counts])
        tracer.emit(ProbeEvent, u=0, s=1, cycle=0)
        assert len(tracer.events) == 1
        tracer.close(10.0)
        assert counts.totals() == {"PROBE": 1}


class TestStreamingEquivalence:
    """Same seed ⇒ identical aggregates across every delivery mode."""

    def test_streaming_matches_buffered_replay(self):
        buffered = run_experiment(TRACED)
        streaming = run_experiment(TRACED.but(trace=False, trace_streaming=True))
        assert streaming.trace is None
        replayed = monitor_consumers(TRACED.but(trace=False, trace_streaming=True))
        replay(buffered.trace, replayed, end_time=buffered.times[-1])
        live_counts, live_monitor = streaming.consumers[0], streaming.consumers[1]
        assert live_counts.windows == replayed[0].windows
        assert live_monitor.commits == replayed[1].commits
        assert live_monitor.efficacy.resolved == replayed[1].efficacy.resolved
        assert live_monitor.efficacy.effective == replayed[1].efficacy.effective
        assert live_monitor.thrash.thrashes == replayed[1].thrash.thrashes

    def test_serial_matches_workers(self):
        config = TRACED.but(trace=False, trace_streaming=True)
        serial = run_experiment(config)
        pooled = run_sweep({"run": config}, workers=2)["run"]
        assert serial.consumers[0].windows == pooled.consumers[0].windows
        serial_mon, pooled_mon = serial.consumers[1], pooled.consumers[1]
        assert serial_mon.commits == pooled_mon.commits
        assert serial_mon.samples == pooled_mon.samples
        assert serial_mon.status() == pooled_mon.status()


class TestBoundedMemory:
    def test_ts_large_hour_run_holds_no_raw_events(self):
        """Acceptance: ts-large n=1000, one simulated hour, streaming.

        The tracer must retain zero raw events and the consumers at most
        ``duration / window + 1`` sealed windows — O(windows), not
        O(events) (a buffered run of this workload holds ~34k events).
        """
        config = ExperimentConfig(
            preset="ts-large",
            n_overlay=1000,
            prop=PROPConfig(policy="G", nhops=2),
            trace_streaming=True,
            duration=3600.0,
            sample_interval=360.0,
            lookups_per_sample=1000,
        )
        world = build_world(config)
        assert world.tracer is not None and world.tracer.streaming
        max_windows = int(config.duration / config.sample_interval) + 1
        for t in range(0, int(config.duration) + 1, int(config.sample_interval)):
            world.sim.run_until(float(t))
            # peak retained state, checked *during* the run
            assert len(world.tracer.events) == 0
            for consumer in world.tracer.consumers:
                windows = getattr(consumer, "windows", None)
                if windows is not None:
                    assert len(windows) <= max_windows
        world.tracer.close(config.duration)
        counts = world.tracer.consumers[0]
        assert sum(counts.totals().values()) > 10_000  # events did flow
        assert len(counts.windows) <= max_windows
