"""Unified metrics registry: primitives, adapters, and the merged table."""

import pytest

from repro.core.protocol import ProtocolCounters
from repro.net.engine import NetCounters
from repro.net.transport import TransportStats
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NET_TABLE_COLUMNS,
    VAR_BUCKETS,
    absorb_net_counters,
    absorb_protocol_counters,
    absorb_transport_stats,
    net_summary_rows,
    percentile_from_buckets,
    registry_from_result,
)


class TestPrimitives:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("x", edges=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0, 7.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=10, <=100, overflow
        assert h.count == 4
        assert h.mean == pytest.approx((5 + 50 + 500 + 7) / 4)

    def test_histogram_requires_sorted_edges(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("x", edges=(100.0, 10.0))
        with pytest.raises(ValueError, match="sorted"):
            Histogram("x", edges=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_cross_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="another kind"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="another kind"):
            reg.histogram("x")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            reg.histogram("h", edges=(1.0, 3.0))

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        h = reg.histogram("c", edges=(10.0,))
        h.observe(3.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["b"] == 2 and snap["a"] == 1.5
        assert snap["c"] == {"edges": [10.0], "counts": [1, 0], "count": 1, "sum": 3.0}

    def test_names_spans_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert reg.names() == ["c", "g", "h"]


class TestAdapters:
    def test_absorb_protocol_counters(self):
        counters = ProtocolCounters(
            probes=10, exchanges=4, walk_messages=20,
            collect_messages=8, notify_messages=12,
            var_history=[5.0, 500.0],
        )
        reg = MetricsRegistry()
        absorb_protocol_counters(reg, counters)
        snap = reg.snapshot()
        assert snap["prop.probes"] == 10
        assert snap["prop.exchanges"] == 4
        assert snap["prop.var"]["count"] == 2
        assert snap["prop.var"]["edges"] == list(VAR_BUCKETS)

    def test_absorb_net_counters(self):
        reg = MetricsRegistry()
        absorb_net_counters(reg, NetCounters(walk_timeouts=3, busy_rejects=1))
        snap = reg.snapshot()
        assert snap["net.walk_timeouts"] == 3
        assert snap["net.busy_rejects"] == 1

    def test_absorb_transport_stats(self):
        stats = TransportStats()
        stats.sent["PROBE"] = 7
        stats.delivered["PROBE"] = 5
        stats.dropped["PROBE"] = 2
        stats.drop_reasons["loss"] = 2
        stats.bytes_sent = 700
        stats.max_in_flight = 4
        reg = MetricsRegistry()
        absorb_transport_stats(reg, stats)
        snap = reg.snapshot()
        assert snap["transport.sent"] == 7
        assert snap["transport.delivered"] == 5
        assert snap["transport.dropped"] == 2
        assert snap["transport.sent.PROBE"] == 7
        assert snap["transport.drop_reason.loss"] == 2
        assert snap["transport.bytes_sent"] == 700
        assert snap["transport.max_in_flight"] == 4.0

    def test_registry_from_result_absorbs_every_surface(self):
        class Result:
            final_counters = ProtocolCounters(probes=2)
            net_counters = NetCounters(walk_timeouts=1)
            net_stats = TransportStats()

        snap = registry_from_result(Result()).snapshot()
        assert snap["prop.probes"] == 2
        assert snap["net.walk_timeouts"] == 1
        assert snap["transport.sent"] == 0

    def test_registry_from_result_tolerates_absent_surfaces(self):
        class Bare:
            final_counters = None
            net_counters = None
            net_stats = None

        assert registry_from_result(Bare()).names() == []


class TestMergedTable:
    def test_column_set_is_pinned(self):
        assert NET_TABLE_COLUMNS == ("metric", "value")

    def test_rows_cover_both_planes_once(self):
        reg = MetricsRegistry()
        absorb_net_counters(reg, NetCounters(walk_timeouts=2))
        absorb_transport_stats(reg, TransportStats())
        reg.counter("prop.probes").inc(5)  # out of scope for the net table
        rows = net_summary_rows(reg)
        names = [name for name, _ in rows]
        assert names == sorted(names)
        assert names.count("net.walk_timeouts") == 1
        assert names.count("transport.sent") == 1
        assert not any(n.startswith("prop.") for n in names)

    def test_histograms_excluded_from_rows(self):
        reg = MetricsRegistry()
        reg.histogram("net.var").observe(1.0)
        assert net_summary_rows(reg) == []


class TestPercentileFromBuckets:
    def test_empty_histogram_reports_zero(self):
        assert percentile_from_buckets([1.0, 2.0], [0, 0, 0], 50.0) == 0.0

    def test_single_occupied_bucket_interpolates_within_edges(self):
        edges = [10.0, 20.0]
        counts = [0, 4, 0]  # all mass in the (10, 20] bucket
        assert percentile_from_buckets(edges, counts, 0.0) == 10.0
        assert percentile_from_buckets(edges, counts, 50.0) == 15.0
        assert percentile_from_buckets(edges, counts, 100.0) == 20.0

    def test_underflow_and_overflow_clamp_to_edge_range(self):
        edges = [1.0, 2.0]
        assert percentile_from_buckets(edges, [3, 0, 0], 99.0) == 1.0
        assert percentile_from_buckets(edges, [0, 0, 3], 1.0) == 2.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="percentile q"):
            percentile_from_buckets([1.0], [1, 0], 101.0)
