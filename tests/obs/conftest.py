"""Shared fixture: one traced, lossy message-plane run.

Session-scoped because the acceptance analysis, the report tests, and
the CLI-free trace tests all read the same run; the result is never
mutated.
"""

import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment

LOSSY_TRACED = ExperimentConfig(
    seed=0,
    preset="ts-small",
    n_overlay=60,
    prop=PROPConfig(policy="G"),
    transport="sim",
    loss=0.3,
    trace=True,
    duration=600.0,
    sample_interval=300.0,
    lookups_per_sample=20,
)


@pytest.fixture(scope="session")
def lossy_traced_result():
    """A PROP-G run over a 30%-loss FaultyTransport with tracing on."""
    return run_experiment(LOSSY_TRACED)
