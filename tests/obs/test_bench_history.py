"""Benchmark history records and the bench-check regression gate."""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.bench_history import (
    HISTORY_SCHEMA,
    append_record,
    check_history,
    current_git_rev,
    history_record,
    load_history,
    render_check,
)


def record(bench="fig5a", secs=1.0, **metrics):
    metrics = metrics or {"wall_seconds": secs}
    return history_record(
        bench,
        fingerprint="f" * 16,
        seed=0,
        metrics=metrics,
        git_rev="abc1234",
        timestamp=1786038486.0,
    )


class TestRecords:
    def test_record_shape(self):
        rec = record()
        assert rec["schema_version"] == HISTORY_SCHEMA
        assert rec["bench"] == "fig5a"
        assert rec["metrics"] == {"wall_seconds": 1.0}
        assert rec["git_rev"] == "abc1234"

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record(secs=1.0))
        append_record(path, record(secs=1.1))
        loaded = load_history(path)
        assert [r["metrics"]["wall_seconds"] for r in loaded] == [1.0, 1.1]

    def test_append_rejects_foreign_schema(self, tmp_path):
        rec = dict(record(), schema_version="something-else/9")
        with pytest.raises(ValueError, match="schema"):
            append_record(tmp_path / "h.jsonl", rec)

    def test_load_skips_unknown_schema_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(path, record())
        with path.open("a") as fh:
            fh.write(json.dumps({"schema_version": "future/2", "bench": "x"}) + "\n")
        assert len(load_history(path)) == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="malformed"):
            load_history(path)

    def test_current_git_rev_in_repo(self):
        rev = current_git_rev()
        assert rev == "unknown" or len(rev) >= 7

    def test_timestamp_is_caller_supplied(self):
        # the record carries exactly what was passed in — wall clocks
        # never run inside repro.obs (reprolint D1)
        assert record()["timestamp"] == 1786038486.0


class TestCheckHistory:
    def test_stable_metrics_pass(self):
        records = [record(secs=s) for s in (1.0, 1.02, 0.98, 1.01, 1.0, 1.03)]
        results = check_history(records)
        assert [r.status for r in results] == ["ok"]

    def test_regression_above_threshold(self):
        records = [record(secs=s) for s in (1.0, 1.02, 0.98)] + [record(secs=1.3)]
        (result,) = check_history(records)
        assert result.status == "regression"
        assert result.rel_delta == pytest.approx(0.3)

    def test_improvement_below_threshold(self):
        records = [record(secs=1.0), record(secs=0.7)]
        (result,) = check_history(records)
        assert result.status == "improved"

    def test_first_record_has_no_baseline(self):
        (result,) = check_history([record()])
        assert result.status == "no-baseline"

    def test_trailing_window_ignores_ancient_records(self):
        # five recent fast records push the one ancient slow record out
        # of the window: a current fast run must not read as "improved"
        records = [record(secs=9.0)] + [record(secs=s) for s in (1.0,) * 5]
        records.append(record(secs=1.0))
        (result,) = check_history(records, window=5)
        assert result.status == "ok"

    def test_median_absorbs_one_noisy_baseline(self):
        records = [record(secs=s) for s in (1.0, 5.0, 1.0, 1.02, 0.98)]
        records.append(record(secs=1.05))
        (result,) = check_history(records)
        assert result.status == "ok"

    def test_benches_checked_independently(self):
        records = [
            record(bench="a", secs=1.0),
            record(bench="a", secs=2.0),  # regression in a
            record(bench="b", secs=1.0),
            record(bench="b", secs=1.0),  # b fine
        ]
        by_bench = {r.bench: r.status for r in check_history(records)}
        assert by_bench == {"a": "regression", "b": "ok"}

    def test_render_mentions_regressions(self):
        records = [record(secs=1.0), record(secs=2.0)]
        text = render_check(check_history(records))
        assert "regression" in text
        assert "1 regression(s)" in text


class TestBenchCheckCLI:
    """Exit codes: 0 pass, 1 regression, 2 no history."""

    def _history(self, tmp_path, values, metric="final_latency_ms"):
        path = tmp_path / "history.jsonl"
        for v in values:
            append_record(path, record(**{metric: v}))
        return str(path)

    def test_pass_exits_zero(self, tmp_path, capsys):
        path = self._history(tmp_path, [100.0, 101.0, 99.0, 100.5])
        assert obs_main(["bench-check", path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_latency_regression_exits_nonzero(self, tmp_path, capsys):
        # acceptance criterion: a 20% latency regression is detected
        path = self._history(tmp_path, [100.0, 101.0, 99.0, 120.0])
        assert obs_main(["bench-check", path]) == 1
        assert "regression" in capsys.readouterr().out

    def test_report_only_reports_but_exits_zero(self, tmp_path, capsys):
        path = self._history(tmp_path, [100.0, 120.0])
        assert obs_main(["bench-check", path, "--report-only"]) == 0
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "report-only" in captured.err

    def test_missing_history_exits_two(self, tmp_path, capsys):
        assert obs_main(["bench-check", str(tmp_path / "nope.jsonl")]) == 2
        assert "no usable history" in capsys.readouterr().err

    def test_empty_history_exits_two(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("")
        assert obs_main(["bench-check", str(path)]) == 2

    def test_threshold_flag(self, tmp_path):
        path = self._history(tmp_path, [100.0, 108.0])
        assert obs_main(["bench-check", path]) == 0  # 8% < default 10%
        assert obs_main(["bench-check", path, "--threshold", "0.05"]) == 1


class TestRepoHistorySeed:
    def test_checked_in_history_is_loadable_and_passes(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks" / "history.jsonl"
        records = load_history(path)
        assert records, "benchmarks/history.jsonl must ship with a seed record"
        assert all(r["schema_version"] == HISTORY_SCHEMA for r in records)
        results = check_history(records)
        assert not any(r.status == "regression" for r in results)
