"""The kernel profiling plane: exact partition, closed registry, exports.

The load-bearing acceptance check lives in
``TestPartitionInvariant.test_attribution_exactly_partitions_wall_time``:
with profiling on, the per-category nanoseconds plus the explicit
``untracked`` residual must equal the profiled total *exactly* (integer
arithmetic, no epsilon).
"""

import json

import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.net.messages import MSG_TYPES
from repro.netsim.engine import Simulator
from repro.obs.prof import (
    CATEGORIES,
    CategoryMismatchError,
    KernelProfile,
    KernelProfiler,
    ProfileError,
    classify_event,
    diff_table,
    validate_speedscope,
    wall_monotonic,
    wall_perf_ns,
)
from repro.obs.__main__ import main as obs_main

#: Small but real: the message plane over the simulator exercises every
#: delivery category plus probe/walk/vote timers within a short run.
PROFILED = ExperimentConfig(
    preset="ts-small",
    n_overlay=48,
    prop=PROPConfig(policy="G", nhops=2),
    transport="sim",
    duration=600.0,
    sample_interval=300.0,
    lookups_per_sample=10,
    kernel_profile=True,
)


def _profile(config: ExperimentConfig = PROFILED) -> KernelProfile:
    result = run_experiment(config)
    assert result.kernel_profile is not None
    return KernelProfile.from_dict(result.kernel_profile)


class TestPartitionInvariant:
    def test_attribution_exactly_partitions_wall_time(self):
        prof = _profile()
        assert prof.total_ns > 0
        assert prof.untracked_ns >= 0
        assert sum(prof.categories.values()) + prof.untracked_ns == prof.total_ns

    def test_profile_covers_dispatch_and_stage_categories(self):
        prof = _profile()
        assert prof.events > 0
        assert prof.categories.get("build", 0) > 0
        assert prof.categories.get("sample", 0) > 0
        assert prof.categories.get("timer:probe", 0) > 0
        assert prof.categories.get("deliver:WALK", 0) > 0
        assert set(prof.categories) <= set(CATEGORIES)

    def test_heap_telemetry_sampled_per_window(self):
        prof = _profile()
        assert prof.heap["pushes"] > 0
        assert prof.heap["pops"] > 0
        assert prof.heap["pushes"] >= prof.heap["pops"]
        assert 0.0 <= prof.heap["final_corpse_ratio"] <= 1.0
        assert prof.heap["pushes_per_sim_s"] > 0
        assert prof.windows == 3  # one per run_until sample (0, 300, 600)

    def test_disabled_profiler_leaves_result_field_none(self):
        result = run_experiment(PROFILED.but(kernel_profile=False))
        assert result.kernel_profile is None


class TestClassification:
    def test_registry_mirrors_wire_grammar(self):
        # prof.py mirrors MSG_TYPES instead of importing the engines;
        # this is the pin that keeps the mirror honest
        assert tuple(f"deliver:{t}" for t in MSG_TYPES) == tuple(
            c for c in CATEGORIES if c.startswith("deliver:")
        )

    def test_timer_callbacks_classified_by_name(self):
        class Engine:
            def _probe_cycle(self, u):
                pass

            def _vote_timeout(self, u, xid):
                pass

        e = Engine()
        assert classify_event(e._probe_cycle, (3,)) == "timer:probe"
        assert classify_event(e._vote_timeout, (3, 7)) == "timer:vote"

    def test_deliveries_classified_by_message_type(self):
        class Msg:
            type_name = "WALK"

        class Transport:
            def _deliver(self, msg):
                pass

        assert classify_event(Transport()._deliver, (Msg(),)) == "deliver:WALK"

    def test_unknown_callbacks_land_in_event_other(self):
        assert classify_event(lambda: None, ()) == "event:other"
        assert classify_event([].append, ("x",)) == "event:other"

    def test_unknown_stage_category_rejected(self):
        prof = KernelProfiler()
        with pytest.raises(ValueError, match="unknown profile category"):
            with prof.stage("not-a-category"):
                pass


class TestQueueCounters:
    def test_pushes_pops_cancels_track_queue_traffic(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        sim.run()
        q = sim.queue
        assert q.pushes == 2
        assert q.pops == 1
        assert q.cancels == 1
        assert q.heap_size >= len(q)


class TestExports:
    def test_table_lists_categories_and_total(self):
        prof = _profile()
        text = prof.table(top=5)
        assert "category" in text
        assert "untracked" in text or "total" in text
        assert "total" in text

    def test_collapsed_stack_lines(self):
        prof = _profile()
        lines = prof.collapsed().strip().splitlines()
        assert lines[-1].startswith("kernel;untracked ")
        for line in lines:
            frame, _, weight = line.rpartition(" ")
            assert frame.startswith("kernel;")
            assert int(weight) >= 0

    def test_speedscope_export_validates(self):
        prof = _profile()
        doc = prof.speedscope()
        validate_speedscope(doc)  # must not raise
        weights = doc["profiles"][0]["weights"]
        assert sum(weights) == prof.total_ns

    def test_speedscope_validator_rejects_corruption(self):
        doc = _profile().speedscope()
        bad = json.loads(json.dumps(doc))
        bad["profiles"][0]["samples"].append([999])
        with pytest.raises(ProfileError):
            validate_speedscope(bad)
        with pytest.raises(ProfileError):
            validate_speedscope({"$schema": "nope"})


class TestRoundTrip:
    def test_save_load_round_trips(self, tmp_path):
        prof = _profile()
        path = prof.save(tmp_path / "kp.json")
        loaded = KernelProfile.load(path)
        assert loaded.total_ns == prof.total_ns
        assert loaded.categories == prof.categories
        assert loaded.untracked_ns == prof.untracked_ns

    def test_truncated_json_raises_profile_error(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"schema_version": "repro.kernel-prof/1", "tot')
        with pytest.raises(ProfileError):
            KernelProfile.load(path)

    def test_unknown_category_raises_mismatch(self):
        doc = _profile().to_dict()
        doc["categories"]["deliver:GOSSIP"] = 1
        with pytest.raises(CategoryMismatchError):
            KernelProfile.from_dict(doc)

    def test_wrong_schema_raises_profile_error(self):
        with pytest.raises(ProfileError, match="schema"):
            KernelProfile.from_dict({"schema_version": "bogus/9"})


class TestDiff:
    def test_diff_table_reports_deltas(self):
        a = _profile()
        b = KernelProfile.from_dict(a.to_dict())
        text = diff_table(a, b)
        assert "delta" in text
        assert "total" in text

    def test_diff_rejects_mismatched_category_sets(self):
        a = _profile()
        doc = a.to_dict()
        doc["categories"] = {
            k: v for k, v in doc["categories"].items() if k != "build"
        }
        b = KernelProfile.from_dict(doc)
        with pytest.raises(CategoryMismatchError, match="only in A"):
            diff_table(a, b)


class TestProfCli:
    def _saved(self, tmp_path, name="kp.json"):
        return str(_profile().save(tmp_path / name))

    def test_prof_renders_table(self, tmp_path, capsys):
        assert obs_main(["prof", self._saved(tmp_path)]) == 0
        assert "category" in capsys.readouterr().out

    def test_prof_writes_validated_speedscope_and_collapsed(self, tmp_path):
        path = self._saved(tmp_path)
        ss = tmp_path / "kp.speedscope.json"
        col = tmp_path / "kp.collapsed.txt"
        assert obs_main(
            ["prof", path, "--speedscope", str(ss), "--collapsed", str(col)]
        ) == 0
        validate_speedscope(json.loads(ss.read_text()))
        assert col.read_text().startswith("kernel;")

    def test_truncated_profile_exits_two(self, tmp_path, capsys):
        path = tmp_path / "trunc.json"
        path.write_text('{"schema_version": "repro.kernel-prof/1"')
        assert obs_main(["prof", str(path)]) == 2
        assert "prof:" in capsys.readouterr().err

    def test_category_mismatch_exits_one(self, tmp_path, capsys):
        doc = _profile().to_dict()
        doc["categories"]["deliver:GOSSIP"] = 5
        path = tmp_path / "alien.json"
        path.write_text(json.dumps(doc))
        assert obs_main(["prof", str(path)]) == 1
        assert "registry" in capsys.readouterr().err

    def test_diff_of_identical_profiles_exits_zero(self, tmp_path, capsys):
        path = self._saved(tmp_path)
        assert obs_main(["prof", "diff", path, path]) == 0
        assert "delta" in capsys.readouterr().out

    def test_diff_of_mismatched_profiles_exits_one(self, tmp_path, capsys):
        a = _profile()
        path_a = str(a.save(tmp_path / "a.json"))
        doc = a.to_dict()
        doc["categories"] = {
            k: v for k, v in doc["categories"].items() if k != "build"
        }
        path_b = tmp_path / "b.json"
        path_b.write_text(json.dumps(doc))
        assert obs_main(["prof", "diff", path_a, str(path_b)]) == 1

    def test_diff_arity_error_exits_two(self, tmp_path, capsys):
        path = self._saved(tmp_path)
        assert obs_main(["prof", "diff", path]) == 2


class TestWallClockHelpers:
    def test_monotonic_is_nondecreasing(self):
        a = wall_monotonic()
        b = wall_monotonic()
        assert b >= a

    def test_perf_ns_is_integer_nanoseconds(self):
        a = wall_perf_ns()
        b = wall_perf_ns()
        assert isinstance(a, int)
        assert b >= a


class TestTraceParity:
    def test_profiling_leaves_traces_byte_identical(self):
        """The deterministic-by-exclusion claim: attaching the profiler
        must not perturb one event of a traced run."""
        base = PROFILED.but(kernel_profile=False, trace=True)
        plain = run_experiment(base)
        profiled = run_experiment(base.but(kernel_profile=True))
        from repro.obs.events import events_to_jsonl

        assert events_to_jsonl(plain.trace) == events_to_jsonl(profiled.trace)
