"""Event schema: closed registry, lossless round-trip, canonical JSONL."""

import dataclasses
import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    ChurnJoin,
    ChurnLeave,
    ExchangeAbortEvent,
    ExchangeCommitEvent,
    ExchangePrepareEvent,
    ExchangeTimeoutEvent,
    MsgDeliverEvent,
    MsgDropEvent,
    MsgSendEvent,
    MsgTimeoutEvent,
    ProbeEvent,
    SpanEndEvent,
    SpanStartEvent,
    VarCollectEvent,
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    events_to_jsonl,
)

#: One fully populated exemplar per wire tag — the round-trip test below
#: fails if a new event type is registered without an exemplar here.
EXEMPLARS = [
    ProbeEvent(time=1.5, u=3, s=7, cycle=2),
    VarCollectEvent(time=2.0, u=3, v=9, cycle=2, var=41.25, policy="G"),
    ExchangePrepareEvent(time=2.5, xid=11, u=3, v=9, var=41.25),
    ExchangeCommitEvent(time=3.0, xid=11, u=3, v=9, var=41.25, traded=4),
    ExchangeAbortEvent(time=3.5, xid=12, u=4, v=8, reason="stale"),
    ExchangeTimeoutEvent(time=4.0, xid=13, u=5, v=6),
    MsgSendEvent(time=4.5, mtype="PROBE", src=3, dst=7, tag=2),
    MsgDeliverEvent(time=5.0, mtype="VAR_REPLY", src=9, dst=3, tag=2),
    MsgDropEvent(time=5.5, mtype="PREPARE", src=3, dst=9, tag=11, reason="loss"),
    MsgTimeoutEvent(time=6.0, kind="walk", u=3, tag=2),
    SpanStartEvent(time=6.1, trace=2, span=14, parent=3, name="msg:WALK", node=3),
    SpanEndEvent(time=6.2, trace=2, span=14, status="ok"),
    ChurnLeave(time=6.5, slot=17, host=42),
    ChurnJoin(time=6.5, slot=17, host=99),
]


class TestSchema:
    def test_registry_is_closed_and_complete(self):
        assert sorted(EVENT_TYPES) == sorted(ev.etype for ev in EXEMPLARS)

    def test_every_exemplar_tag_matches_its_class(self):
        for ev in EXEMPLARS:
            assert EVENT_TYPES[ev.etype] is type(ev)

    def test_events_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EXEMPLARS[0].u = 99

    @pytest.mark.parametrize("ev", EXEMPLARS, ids=lambda e: e.etype)
    def test_dict_round_trip(self, ev):
        data = event_to_dict(ev)
        assert data["e"] == ev.etype and data["t"] == ev.time
        assert event_from_dict(data) == ev

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown event tag"):
            event_from_dict({"e": "BOGUS", "t": 0.0})


class TestJsonl:
    def test_round_trip_preserves_order_and_values(self):
        assert events_from_jsonl(events_to_jsonl(EXEMPLARS)) == EXEMPLARS

    def test_canonical_form(self):
        text = events_to_jsonl(EXEMPLARS[:2])
        assert text.endswith("\n")
        for line in text.splitlines():
            obj = json.loads(line)
            # sorted keys, no whitespace: re-encoding canonically is a no-op
            assert line == json.dumps(obj, sort_keys=True, separators=(",", ":"))

    def test_empty_trace_is_empty_string(self):
        assert events_to_jsonl([]) == ""
        assert events_from_jsonl("") == []

    def test_blank_lines_skipped(self):
        text = events_to_jsonl(EXEMPLARS[:1]) + "\n\n"
        assert events_from_jsonl(text) == EXEMPLARS[:1]
