"""Plain-text reporting helpers."""

import numpy as np

from repro.harness.reporting import format_series, format_table


def test_table_has_header_rule_and_rows():
    out = format_table(["a", "b"], [[1, 2.5], [3, 4.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "b" in lines[0]
    assert set(lines[1]) <= {"-", " "}
    assert "2.500" in lines[2]
    assert "4.250" in lines[3]


def test_table_column_alignment():
    out = format_table(["col"], [["x"], ["longer-value"]])
    lines = out.splitlines()
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all lines equal width


def test_table_handles_numpy_scalars():
    out = format_table(["v"], [[np.float64(1.23456)]])
    assert "1.235" in out


def test_series_format():
    times = np.array([0.0, 60.0])
    out = format_series("demo", times, {"s1": np.array([1.0, 2.0]), "s2": np.array([3.0, 4.0])})
    assert out.startswith("== demo ==")
    lines = out.splitlines()
    assert "s1" in lines[1] and "s2" in lines[1]
    assert "60" in out and "2.000" in out and "4.000" in out
