"""Multi-seed replication: aggregation math and world independence."""

import warnings

import numpy as np
import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig
from repro.harness.replicate import ReplicatedSeries, replicate

FAST = ExperimentConfig(
    preset="ts-small",
    n_overlay=60,
    prop=PROPConfig(policy="G"),
    duration=600.0,
    sample_interval=300.0,
    lookups_per_sample=60,
)


def test_replicated_series_math():
    stack = np.array([[1.0, 2.0], [3.0, 4.0]])
    s = ReplicatedSeries.from_stack(stack)
    assert np.allclose(s.mean, [2.0, 3.0])
    assert np.allclose(s.std, np.std(stack, axis=0, ddof=1))
    assert np.allclose(s.low, [1.0, 2.0])
    assert np.allclose(s.high, [3.0, 4.0])


def test_single_replica_zero_std():
    s = ReplicatedSeries.from_stack(np.array([[5.0, 6.0]]))
    assert np.allclose(s.std, 0.0)


def test_replicate_runs_distinct_worlds():
    summary = replicate(FAST, seeds=[1, 2, 3])
    assert summary.n_replicas == 3
    initials = [r.initial_lookup_latency for r in summary.results]
    assert len(set(initials)) == 3  # different worlds, different latencies


def test_replicate_improvement_stats():
    summary = replicate(FAST, seeds=[1, 2, 3])
    assert 0.0 < summary.mean_improvement() < 1.0
    assert summary.std_improvement() >= 0.0
    assert summary.all_replicas_improve()


def test_envelope_brackets_mean():
    summary = replicate(FAST, seeds=[1, 2])
    assert np.all(summary.lookup_latency.low <= summary.lookup_latency.mean + 1e-9)
    assert np.all(summary.lookup_latency.mean <= summary.lookup_latency.high + 1e-9)


def test_degenerate_initial_sample_warns_instead_of_poisoning():
    """Regression: a zero/NaN initial lookup sample used to flow through
    ``invalid="ignore"`` division and silently poison mean_improvement().
    With lookups unmeasured every series is NaN — the degenerate case."""
    with pytest.warns(RuntimeWarning, match="zero or non-finite initial"):
        summary = replicate(FAST, seeds=[1, 2], measure_lookups=False)
    assert np.all(np.isnan(summary.improvement_ratios))
    assert np.isnan(summary.mean_improvement())
    assert summary.std_improvement() == 0.0


def test_healthy_replication_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        summary = replicate(FAST, seeds=[1, 2])
    assert np.all(np.isfinite(summary.improvement_ratios))


def test_workers_match_serial_per_seed_series():
    serial = replicate(FAST, seeds=[1, 2], workers=1)
    pooled = replicate(FAST, seeds=[1, 2], workers=2)
    assert serial.seeds == pooled.seeds
    for a, b in zip(serial.results, pooled.results):
        assert np.array_equal(a.lookup_latency, b.lookup_latency, equal_nan=True)
        assert np.array_equal(a.stretch, b.stretch, equal_nan=True)
        assert np.array_equal(a.exchanges, b.exchanges)


def test_duplicate_seeds_rejected():
    with pytest.raises(ValueError):
        replicate(FAST, seeds=[1, 1])


def test_empty_seeds_rejected():
    with pytest.raises(ValueError):
        replicate(FAST, seeds=[])


def test_seed_field_overridden_per_replica():
    summary = replicate(FAST.but(seed=99), seeds=[4, 5])
    assert summary.results[0].config.seed == 4
    assert summary.results[1].config.seed == 5
