"""Figure registry: ids, scales, config shapes."""

import pytest

from repro.harness.figures import FIGURE_IDS, figure_configs, figure_description


def test_all_figures_registered():
    assert set(FIGURE_IDS) == {
        "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7",
        "oracle-error",
    }


def test_oracle_error_panel_covers_backends():
    configs = figure_configs("oracle-error", scale="quick")
    assert {cfg.oracle for cfg in configs.values()} == {"exact", "vivaldi", "landmark"}
    dims = {cfg.oracle_options.get("dim") for cfg in configs.values()
            if cfg.oracle == "vivaldi"}
    assert len(dims) >= 3  # the dimensionality sweep


def test_unknown_figure_rejected():
    with pytest.raises(KeyError):
        figure_description("fig9")
    with pytest.raises(KeyError):
        figure_configs("fig9")


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        figure_configs("fig5a", scale="huge")


@pytest.mark.parametrize("fid", FIGURE_IDS)
def test_configs_validate_at_both_scales(fid):
    for scale in ("paper", "quick"):
        configs = figure_configs(fid, scale=scale)
        assert len(configs) >= 2
        # constructing an ExperimentConfig runs its validation
        for cfg in configs.values():
            assert cfg.duration > 0


def test_ttl_panels_have_four_scenarios():
    assert len(figure_configs("fig5a")) == 4
    assert len(figure_configs("fig6a")) == 4


def test_size_panel_reaches_paper_max():
    sizes = {cfg.n_overlay for cfg in figure_configs("fig5b", scale="paper").values()}
    assert 5000 in sizes


def test_quick_scale_is_smaller():
    quick = figure_configs("fig6a", scale="quick")
    paper = figure_configs("fig6a", scale="paper")
    assert all(q.n_overlay < p.n_overlay
               for q, p in zip(quick.values(), paper.values()))


def test_fig7_covers_protocol_grid():
    configs = figure_configs("fig7", scale="quick")
    labels = set(configs)
    assert any("PROP-O" in l for l in labels)
    assert any("PROP-G" in l for l in labels)
    assert any("LTM" in l for l in labels)
    assert any("none" in l for l in labels)


def test_cli_figure_quick_run(capsys):
    """End-to-end: the CLI regenerates a figure at a tiny custom scale."""
    from repro.cli import main
    from repro.harness import figures

    # monkeypatch-free shrink: use quick scale but the smallest panel
    assert main(["figure", "fig6c", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "ts-large" in out and "ts-small" in out
