"""Opt-in wall-clock profiler: stage accumulation and cross-worker merge."""

import pytest

from repro.harness.parallel import Task, run_tasks
from repro.harness.profiler import StageProfiler, merge_profiles


class TestStageProfiler:
    def test_records_named_stages(self):
        prof = StageProfiler()
        with prof.stage("build"):
            pass
        with prof.stage("simulate"):
            pass
        assert set(prof.timings) == {"build", "simulate"}
        assert all(t >= 0.0 for t in prof.timings.values())

    def test_repeated_stages_accumulate(self):
        prof = StageProfiler()
        with prof.stage("simulate"):
            pass
        first = prof.timings["simulate"]
        with prof.stage("simulate"):
            pass
        assert prof.timings["simulate"] >= first
        assert len(prof.timings) == 1

    def test_records_even_when_stage_raises(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.stage("doomed"):
                raise RuntimeError("boom")
        assert "doomed" in prof.timings


class TestMergeProfiles:
    def test_stage_wise_sums(self):
        merged = merge_profiles([
            {"build": 1.0, "simulate": 2.0},
            {"simulate": 3.0, "sample": 0.5},
        ])
        assert merged == {"build": 1.0, "sample": 0.5, "simulate": 5.0}

    def test_sorted_keys(self):
        merged = merge_profiles([{"z": 1.0, "a": 2.0}])
        assert list(merged) == ["a", "z"]

    def test_none_entries_skipped(self):
        assert merge_profiles([None, {"a": 1.0}, None]) == {"a": 1.0}

    def test_empty(self):
        assert merge_profiles([]) == {}

    def test_empty_dict_entries_skipped(self):
        assert merge_profiles([{}, {"a": 1.0}, {}]) == {"a": 1.0}

    def test_all_entries_absent_yields_empty(self):
        assert merge_profiles([None, {}, None]) == {}


class TestHarnessShim:
    def test_harness_module_reexports_obs_implementation(self):
        # harness.profiler is a back-compat facade over repro.obs.prof;
        # identity (not just equality) keeps isinstance checks working
        from repro.obs.prof import StageProfiler as ObsStageProfiler
        from repro.obs.prof import merge_profiles as obs_merge_profiles

        assert StageProfiler is ObsStageProfiler
        assert merge_profiles is obs_merge_profiles


def _noop() -> int:
    return 7


class TestRunTasksTimings:
    def test_serial_path_fills_timings(self):
        timings = {}
        results = run_tasks(
            [Task("a", _noop), Task("b", _noop)], workers=1, timings=timings
        )
        assert results == {"a": 7, "b": 7}
        assert set(timings) == {"a", "b"}
        assert all(t >= 0.0 for t in timings.values())

    def test_pool_path_fills_timings(self):
        timings = {}
        results = run_tasks(
            [Task("a", _noop), Task("b", _noop)], workers=2, timings=timings
        )
        assert results == {"a": 7, "b": 7}
        assert set(timings) == {"a", "b"}

    def test_timings_param_is_optional(self):
        assert run_tasks([Task("a", _noop)], workers=1) == {"a": 7}
