"""Result persistence: JSON round-trip fidelity."""

import json

import numpy as np
import pytest

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.persistence import load_result, save_result

FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=300.0,
    sample_interval=150.0,
    lookups_per_sample=40,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(ExperimentConfig(prop=PROPConfig(policy="G"), **FAST))


def test_round_trip_series(result, tmp_path):
    path = save_result(result, tmp_path / "r.json")
    stored = load_result(path)
    assert np.allclose(stored.times, result.times)
    assert np.allclose(stored.stretch, result.stretch)
    assert np.allclose(stored.lookup_latency, result.lookup_latency)
    assert np.array_equal(stored.probes, result.probes)


def test_round_trip_summary_api(result, tmp_path):
    stored = load_result(save_result(result, tmp_path / "r.json"))
    assert stored.final_stretch == pytest.approx(result.final_stretch)
    assert stored.improvement_ratio() == pytest.approx(result.improvement_ratio())


def test_counters_preserved(result, tmp_path):
    stored = load_result(save_result(result, tmp_path / "r.json"))
    assert stored.final_counters["probes"] == result.final_counters.probes
    assert stored.final_counters["exchanges"] == result.final_counters.exchanges
    assert "var_history" not in stored.final_counters


def test_config_echoed(result, tmp_path):
    stored = load_result(save_result(result, tmp_path / "r.json"))
    assert stored.config["n_overlay"] == 60
    assert stored.config["prop"]["policy"] == "G"
    assert stored.config["prop"]["__dataclass__"] == "PROPConfig"


def test_file_is_plain_json(result, tmp_path):
    path = save_result(result, tmp_path / "r.json")
    data = json.loads(path.read_text())
    assert data["schema"] == "repro.experiment-result/1"


def test_wrong_schema_rejected(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"schema": "other"}))
    with pytest.raises(ValueError):
        load_result(p)


def test_unoptimized_result_round_trips(tmp_path):
    r = run_experiment(ExperimentConfig(**FAST))
    stored = load_result(save_result(r, tmp_path / "r.json"))
    assert stored.final_counters is None
    assert np.allclose(stored.link_stretch, r.link_stretch)
