"""Parallel task runner: ordering, determinism, crash/timeout robustness.

Task bodies live at module level so worker processes can unpickle them.
Pool tests pin the ``fork`` context: it is always available on Linux
and keeps the suite independent of the interpreter's default.
"""

import multiprocessing
import os
import time

import pytest

from repro.harness.parallel import (
    ProgressRollup,
    Task,
    TaskError,
    TaskEvent,
    effective_workers,
    run_tasks,
)

FORK = multiprocessing.get_context("fork")


def _square(x):
    return x * x


def _boom(msg):
    raise ValueError(msg)


def _hang(seconds):
    time.sleep(seconds)
    return "woke"


def _crash_unless_marker(marker_path):
    """Hard-kill the worker on the first attempt, succeed on the retry."""
    if os.path.exists(marker_path):
        return "recovered"
    with open(marker_path, "w") as fh:
        fh.write("attempted")
    os._exit(13)


def _always_crash():
    os._exit(13)


def _tasks(n):
    return [Task(f"t{i}", _square, (i,)) for i in range(n)]


class TestSerial:
    def test_results_keyed_and_ordered_by_label(self):
        results = run_tasks(_tasks(4), workers=1)
        assert results == {"t0": 0, "t1": 1, "t2": 4, "t3": 9}
        assert list(results) == ["t0", "t1", "t2", "t3"]

    def test_empty_task_list(self):
        assert run_tasks([], workers=4) == {}

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_tasks([Task("x", _square, (1,)), Task("x", _square, (2,))])

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="kaput"):
            run_tasks([Task("bad", _boom, ("kaput",))], workers=1)

    def test_progress_events(self):
        events: list[TaskEvent] = []
        run_tasks(_tasks(2), workers=1, progress=events.append)
        assert [(e.label, e.status) for e in events] == [
            ("t0", "start"), ("t0", "done"), ("t1", "start"), ("t1", "done"),
        ]


class TestPool:
    def test_matches_serial(self):
        serial = run_tasks(_tasks(6), workers=1)
        pooled = run_tasks(_tasks(6), workers=3, mp_context=FORK)
        assert pooled == serial
        assert list(pooled) == list(serial)

    def test_every_task_gets_start_and_done_event(self):
        events: list[TaskEvent] = []
        run_tasks(_tasks(5), workers=2, progress=events.append, mp_context=FORK)
        for label in ("t0", "t1", "t2", "t3", "t4"):
            statuses = [e.status for e in events if e.label == label]
            assert statuses == ["start", "done"]

    def test_task_exception_propagates_from_worker(self):
        tasks = [Task("ok", _square, (2,)), Task("bad", _boom, ("kaput",))]
        with pytest.raises(ValueError, match="kaput"):
            run_tasks(tasks, workers=2, mp_context=FORK)

    def test_worker_crash_retried_then_recovers(self, tmp_path):
        marker = str(tmp_path / "marker")
        events: list[TaskEvent] = []
        results = run_tasks(
            [Task("fragile", _crash_unless_marker, (marker,))],
            workers=2, max_retries=1, progress=events.append, mp_context=FORK,
        )
        assert results == {"fragile": "recovered"}
        assert "retry" in [e.status for e in events]

    def test_worker_crash_exhausts_retries(self):
        with pytest.raises(TaskError, match="fragile"):
            run_tasks(
                [Task("fragile", _always_crash)],
                workers=2, max_retries=1, mp_context=FORK,
            )

    def test_hung_task_times_out(self):
        started = time.monotonic()
        with pytest.raises(TaskError, match="sleeper"):
            run_tasks(
                [Task("sleeper", _hang, (60.0,))],
                workers=2, task_timeout=0.5, max_retries=0, mp_context=FORK,
            )
        assert time.monotonic() - started < 30.0  # pool torn down, not waited out

    def test_finished_siblings_survive_a_timeout(self):
        # the quick task (queued after the hung one) completes on the
        # second worker while the hung one times out; its result must be
        # salvaged from the condemned pool, not lost
        tasks = [Task("sleeper", _hang, (60.0,)), Task("quick", _square, (7,))]
        events: list[TaskEvent] = []
        with pytest.raises(TaskError, match="sleeper"):
            run_tasks(tasks, workers=2, task_timeout=3.0, max_retries=0,
                      progress=events.append, mp_context=FORK)
        assert ("quick", "done") in [(e.label, e.status) for e in events]


class TestFallback:
    def test_unusable_pool_falls_back_to_serial(self, monkeypatch):
        import repro.harness.parallel as par

        def broken_executor(*args, **kwargs):
            raise OSError("no multiprocessing here")

        monkeypatch.setattr(par, "ProcessPoolExecutor", broken_executor)
        events: list[TaskEvent] = []
        results = run_tasks(_tasks(3), workers=3, progress=events.append)
        assert results == {"t0": 0, "t1": 1, "t2": 4}
        assert all(e.status in ("start", "done") for e in events)


class TestProgressRollup:
    def test_counts_fold_from_events(self):
        rollup = ProgressRollup(3)
        rollup(TaskEvent("a", "start"))
        rollup(TaskEvent("a", "done", 2.0))
        rollup(TaskEvent("b", "start"))
        rollup(TaskEvent("b", "retry", 1.0, "worker process died"))
        assert (rollup.started, rollup.done, rollup.retries) == (2, 1, 1)

    def test_eta_from_mean_elapsed(self):
        rollup = ProgressRollup(4)
        rollup(TaskEvent("a", "done", 2.0))
        rollup(TaskEvent("b", "done", 4.0))
        assert rollup.eta_seconds() == pytest.approx(6.0)  # 2 left * mean 3s
        assert rollup.eta_seconds(workers=2) == pytest.approx(3.0)

    def test_eta_none_before_first_completion(self):
        assert ProgressRollup(4).eta_seconds() is None

    def test_render_line(self):
        rollup = ProgressRollup(2)
        rollup(TaskEvent("seed=1", "start"))
        rollup(TaskEvent("seed=1", "done", 3.0))
        line = rollup.render()
        assert line.startswith("[1/2]")
        assert "eta ~3s" in line

    def test_render_complete_drops_eta(self):
        rollup = ProgressRollup(1)
        rollup(TaskEvent("t", "done", 3.0))
        assert rollup.render() == "[1/1]"

    def test_chain_updates_then_forwards(self):
        rollup = ProgressRollup(1)
        seen: list[int] = []
        chained = rollup.chain(lambda event: seen.append(rollup.done))
        chained(TaskEvent("t", "done", 1.0))
        assert seen == [1]  # rollup already updated when forwarded

    def test_rollup_as_progress_callback(self):
        rollup = ProgressRollup(3)
        run_tasks(_tasks(3), progress=rollup)
        assert rollup.done == 3
        assert len(rollup.elapsed_done) == 3

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ProgressRollup(-1)


class TestEffectiveWorkers:
    def test_clamped_to_task_count(self):
        assert effective_workers(8, 3) == 3

    def test_one_is_serial(self):
        assert effective_workers(1, 100) == 1

    def test_zero_means_cpu_count(self):
        assert effective_workers(0, 1000) == min(os.cpu_count() or 1, 1000)

    def test_no_tasks(self):
        assert effective_workers(4, 0) == 1
