"""Experiment harness: config validation, world building, sampling."""

import numpy as np
import pytest

from repro.baselines.ltm import LTMConfig
from repro.baselines.pns import PNSChordOverlay
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, build_world, run_experiment
from repro.overlay.chord import ChordOverlay
from repro.overlay.gnutella import GnutellaOverlay

# Tiny-but-real settings used across this suite; the small preset keeps a
# single run under a second.
FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=300.0,
    sample_interval=150.0,
    lookups_per_sample=60,
)


class TestConfigValidation:
    def test_unknown_overlay_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(overlay_kind="napster")

    def test_two_optimizers_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(prop=PROPConfig(), ltm=LTMConfig())

    def test_churn_needs_spares(self):
        from repro.workloads.churn import ChurnConfig

        with pytest.raises(ValueError):
            ExperimentConfig(churn=ChurnConfig(0.01), n_spare=0)

    def test_fast_lookup_needs_heterogeneity(self):
        with pytest.raises(ValueError):
            ExperimentConfig(fast_lookup_fraction=0.5, heterogeneous=False)

    def test_pns_requires_chord(self):
        with pytest.raises(ValueError):
            ExperimentConfig(overlay_kind="gnutella", pns=True)

    def test_but_overrides(self):
        cfg = ExperimentConfig(**FAST)
        cfg2 = cfg.but(n_overlay=100)
        assert cfg2.n_overlay == 100
        assert cfg2.preset == cfg.preset


class TestBuildWorld:
    def test_gnutella_world(self):
        w = build_world(ExperimentConfig(overlay_kind="gnutella", **FAST))
        assert isinstance(w.overlay, GnutellaOverlay)
        assert w.overlay.n_slots == 60
        assert w.engine is None and w.ltm is None and w.churn is None

    def test_chord_world_with_prop(self):
        w = build_world(ExperimentConfig(overlay_kind="chord", prop=PROPConfig(), **FAST))
        assert isinstance(w.overlay, ChordOverlay)
        assert w.engine is not None

    def test_pns_world(self):
        w = build_world(ExperimentConfig(overlay_kind="chord", pns=True, **FAST))
        assert isinstance(w.overlay, PNSChordOverlay)

    def test_heterogeneous_world(self):
        w = build_world(ExperimentConfig(heterogeneous=True, **FAST))
        assert w.het is not None
        assert w.het.delay_ms.shape == (60,)

    def test_spares_reserved(self):
        w = build_world(ExperimentConfig(n_spare=10, **FAST))
        assert len(w.spare_hosts) == 10
        assert set(w.spare_hosts).isdisjoint(set(w.overlay.embedding.tolist()))

    def test_too_many_members_rejected(self):
        cfg = ExperimentConfig(**{**FAST, "n_overlay": 10_000})
        with pytest.raises(ValueError):
            build_world(cfg)

    def test_same_seed_same_world(self):
        a = build_world(ExperimentConfig(**FAST))
        b = build_world(ExperimentConfig(**FAST))
        assert np.array_equal(a.overlay.embedding, b.overlay.embedding)
        assert set(a.overlay.iter_edges()) == set(b.overlay.iter_edges())

    def test_protocol_choice_does_not_change_world(self):
        a = build_world(ExperimentConfig(**FAST))
        b = build_world(ExperimentConfig(prop=PROPConfig(), **FAST))
        assert np.array_equal(a.overlay.embedding, b.overlay.embedding)
        assert set(a.overlay.iter_edges()) == set(b.overlay.iter_edges())


class TestRunExperiment:
    def test_sampling_grid(self):
        r = run_experiment(ExperimentConfig(**FAST))
        assert np.array_equal(r.times, [0.0, 150.0, 300.0])
        assert r.stretch.shape == r.lookup_latency.shape == (3,)

    def test_unoptimized_world_is_static(self):
        r = run_experiment(ExperimentConfig(**FAST))
        assert r.link_stretch[0] == pytest.approx(r.link_stretch[-1])
        assert r.probes[-1] == 0

    def test_prop_counters_accumulate(self):
        r = run_experiment(ExperimentConfig(prop=PROPConfig(), **FAST))
        assert np.all(np.diff(r.probes) >= 0)
        assert r.probes[-1] > 0
        assert r.final_counters is not None

    def test_prop_g_improves_gnutella(self):
        cfg = ExperimentConfig(prop=PROPConfig(policy="G"), **{**FAST, "duration": 900.0})
        r = run_experiment(cfg)
        assert r.final_lookup_latency < r.initial_lookup_latency
        assert r.improvement_ratio() < 1.0

    def test_ltm_counters(self):
        r = run_experiment(ExperimentConfig(ltm=LTMConfig(), **FAST))
        assert r.probes[-1] > 0  # rounds counted
        assert r.final_counters is not None

    def test_measure_lookups_false_skips(self):
        r = run_experiment(ExperimentConfig(**FAST), measure_lookups=False)
        assert np.all(np.isnan(r.lookup_latency))
        assert np.all(np.isfinite(r.link_stretch))

    def test_churn_world_runs(self):
        from repro.workloads.churn import ChurnConfig

        cfg = ExperimentConfig(
            prop=PROPConfig(),
            churn=ChurnConfig(rate_per_node=0.001),
            n_spare=20,
            **FAST,
        )
        r = run_experiment(cfg)
        assert np.all(np.isfinite(r.stretch))

    def test_probe_rate_series(self):
        r = run_experiment(ExperimentConfig(prop=PROPConfig(), **FAST))
        rates = r.probe_rate()
        assert rates.shape == (2,)
        assert np.all(rates >= 0)


class TestApplicabilityValidation:
    def test_prop_o_on_chord_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(overlay_kind="chord", prop=PROPConfig(policy="O"))

    def test_ltm_on_can_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(overlay_kind="can", ltm=LTMConfig())

    def test_prop_g_on_pastry_accepted(self):
        cfg = ExperimentConfig(overlay_kind="pastry", prop=PROPConfig(policy="G"))
        assert cfg.overlay_kind == "pastry"
