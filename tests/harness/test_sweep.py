"""Sweep runner: ordering, labels, progress callbacks."""

from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import run_sweep

FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=150.0,
    sample_interval=150.0,
    lookups_per_sample=30,
)


def test_sweep_preserves_order_and_labels():
    configs = {
        "n=60": ExperimentConfig(**FAST),
        "n=80": ExperimentConfig(**{**FAST, "n_overlay": 80}),
    }
    results = run_sweep(configs)
    assert list(results) == ["n=60", "n=80"]
    assert results["n=80"].config.n_overlay == 80


def test_progress_callback():
    seen = []
    run_sweep({"only": ExperimentConfig(**FAST)}, progress=seen.append)
    assert seen == ["only"]


def test_measure_lookups_forwarded():
    import numpy as np

    results = run_sweep({"x": ExperimentConfig(**FAST)}, measure_lookups=False)
    assert np.all(np.isnan(results["x"].lookup_latency))
