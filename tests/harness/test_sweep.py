"""Sweep runner: ordering, labels, progress events, worker determinism."""

import numpy as np

from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import run_sweep

FAST = dict(
    preset="ts-small",
    n_overlay=60,
    duration=150.0,
    sample_interval=150.0,
    lookups_per_sample=30,
)


def test_sweep_preserves_order_and_labels():
    configs = {
        "n=60": ExperimentConfig(**FAST),
        "n=80": ExperimentConfig(**{**FAST, "n_overlay": 80}),
    }
    results = run_sweep(configs)
    assert list(results) == ["n=60", "n=80"]
    assert results["n=80"].config.n_overlay == 80


def test_progress_events():
    events = []
    run_sweep({"only": ExperimentConfig(**FAST)}, progress=events.append)
    assert [(e.label, e.status) for e in events] == [("only", "start"), ("only", "done")]
    assert events[-1].elapsed >= 0.0


def test_measure_lookups_forwarded():
    results = run_sweep({"x": ExperimentConfig(**FAST)}, measure_lookups=False)
    assert np.all(np.isnan(results["x"].lookup_latency))


def test_workers_do_not_change_results():
    """Determinism guarantee: the same seeds produce byte-identical
    series regardless of worker count or completion order."""
    configs = {
        "a": ExperimentConfig(**FAST, seed=1),
        "b": ExperimentConfig(**FAST, seed=2),
        "c": ExperimentConfig(**{**FAST, "n_overlay": 70}, seed=3),
        "d": ExperimentConfig(**FAST, seed=4),
    }
    serial = run_sweep(configs, workers=1)
    pooled = run_sweep(configs, workers=4)
    assert list(serial) == list(pooled) == list(configs)
    for label in configs:
        for field in ("times", "stretch", "link_stretch", "lookup_latency",
                      "probes", "messages", "exchanges"):
            a = getattr(serial[label], field)
            b = getattr(pooled[label], field)
            assert np.array_equal(a, b, equal_nan=True), (label, field)
