"""D3 fixture: unsorted set iteration feeding a decision path."""


def pick(values: list[int]) -> list[int]:
    uniq = set(values)
    evens = [x for x in uniq if x % 2 == 0]
    for c in {3, 1, 2}:
        evens.append(c)
    return list(uniq)
