"""G1 fixture: a codec missing an arm and carrying a stale fingerprint."""

WIRE_VERSION = 2

WIRE_KINDS: dict[str, str] = {
    "bool": "bool",
    "int": "int",
    "float": "float",
}

# BAD: stale — wrong version prefix and wrong hash for this grammar.
GRAMMAR_FINGERPRINT = "1:deadbeefdeadbeef"


def encode(msg):
    kind = "?"
    if kind == "bool":
        pass
    elif kind == "int":
        pass
    # BAD: no arm for "float", which WIRE_KINDS declares
    return b""


def decode(data):
    kind = "?"
    if kind == "bool":
        pass
    elif kind == "int":
        pass
    elif kind == "float":
        pass
    return None
