"""G1 fixture: a message grammar that drifted from its codec."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class Message:
    src: int
    dst: int

    type_name: ClassVar[str] = "MESSAGE"


@dataclass(frozen=True)
class Ping(Message):
    cycle: int
    payload: dict[str, int]  # BAD: no wire encoding for this annotation

    type_name: ClassVar[str] = "PING"


@dataclass(frozen=True)
class Pong(Message):
    cycle: int

    type_name: ClassVar[str] = "PONG_X"  # BAD: not listed in MSG_TYPES


MSG_TYPES: tuple[str, ...] = (
    "PING",
    "PONG",  # BAD: no message class declares this type_name
)
