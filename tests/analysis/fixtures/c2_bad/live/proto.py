"""C2 fixture: event-loop callbacks that can raise."""


class BadProtocol:
    def __init__(self, sink):
        self._sink = sink
        self.errors = 0

    def datagram_received(self, data, addr):
        # BAD: an exception from the sink unwinds into the event loop.
        self._sink(data)

    def error_received(self, exc):
        # BAD: callbacks must count, never raise.
        raise RuntimeError(exc)


class GoodProtocol:
    def __init__(self, sink):
        self._sink = sink
        self.errors = 0

    def datagram_received(self, data, addr):
        try:
            self._sink(data)
        except Exception:
            self.errors += 1

    def connection_lost(self, exc):
        self._dispose()  # delegates to an exception-safe helper

    def connection_made(self, transport):
        self.transport = transport  # no risky statements at all

    def _dispose(self):
        try:
            self._cleanup()
        except Exception:
            self.errors += 1

    def _cleanup(self):
        pass
