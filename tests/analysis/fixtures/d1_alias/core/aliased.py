"""D1 alias dodge: renamed clock imports must still resolve and flag."""

import time as _time
from datetime import datetime as dt
from time import monotonic as mono


def sneaky_module_alias() -> float:
    return _time.monotonic()


def sneaky_module_alias_ns() -> int:
    return _time.perf_counter_ns()


def sneaky_class_alias() -> object:
    return dt.now()


def sneaky_name_alias() -> float:
    return mono()
