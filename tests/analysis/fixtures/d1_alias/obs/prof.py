"""The profiling plane is on the wall-clock allowlist, alias or not."""

import time as _time


def sanctioned() -> int:
    return _time.perf_counter_ns()
