"""D6 fixture: a config field the validation path never reads."""

from dataclasses import dataclass


@dataclass(frozen=True)
class PROPConfig:
    nhops: int = 2
    ghost: float = 0.0

    def __post_init__(self) -> None:
        if self.nhops < 1:
            raise ValueError("nhops must be >= 1")
