"""C1 fixture: await-interleaving hazards and sink-less tasks."""

import asyncio


class Cache:
    def __init__(self):
        self.version = 0
        self.data = {}

    async def refresh(self, fetch):
        v = self.version  # read before the suspension point
        data = await fetch()
        # BAD: another task may have bumped self.version while we were
        # suspended; this write clobbers it without re-reading.
        self.version = v + 1
        self.data = data  # fine: never read before the await

    async def refresh_ok(self, fetch):
        v = self.version
        data = await fetch()
        if self.version == v:  # revalidated after resuming
            self.version = v + 1
            self.data = data

    def spawn(self, coro):
        # BAD: fire-and-forget — the task's exception is discarded.
        asyncio.create_task(coro)

    def spawn_bound(self, coro):
        # BAD: bound but never awaited/gathered/given a done-callback.
        task = asyncio.create_task(coro)
        self.version += 1
        return None

    def spawn_sunk(self, coro):
        task = asyncio.create_task(coro)
        task.add_done_callback(self._done)

    def spawn_returned(self, coro):
        task = asyncio.create_task(coro)
        return task  # the caller owns it now

    def _done(self, task):
        self.version += 1
