"""D1 fixture: wall-clock reads and unseeded randomness (all violations)."""

import random
import time

import numpy as np


def jitter() -> float:
    return random.random() + time.time()


def legacy_draw() -> float:
    np.random.seed(7)
    return float(np.random.rand())


def fresh_rng() -> float:
    rng = np.random.default_rng()
    return float(rng.random())
