"""D5 fixture: overlay mutation outside the sanctioned modules."""


class Meddler:
    def __init__(self, overlay):
        self.overlay = overlay

    def wreck(self, u: int, v: int) -> None:
        self.overlay.add_edge(u, v)
        self.overlay.embedding[u] = v
        self.overlay.embedding_version += 1
        self.overlay._adj[u].add(v)
