"""D1 scoping fixture: the same wall-clock read outside the allowlist
(``repro.core``) stays a violation."""

import time


def wall_deadline() -> float:
    return time.monotonic()  # forbidden: repro.core is not allowlisted
