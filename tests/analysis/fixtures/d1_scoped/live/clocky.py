"""D1 scoping fixture: wall-clock reads inside ``repro.live`` are
sanctioned (the deployment plane runs on real time by design), but
unseeded randomness is still a violation even here."""

import time

import numpy as np


def wall_deadline() -> float:
    return time.monotonic() + time.time()  # allowed: repro.live


def fresh_rng() -> float:
    rng = np.random.default_rng()  # still forbidden: unseeded
    return float(rng.random())
