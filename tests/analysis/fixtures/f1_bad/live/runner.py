"""F1 fixture: live-plane streams leaking into another component.

D2 sees nothing wrong here — every ``rngs.stream`` call site uses a
string literal — but the generators flow across component boundaries.
"""

from repro.net.engine import Engine


def start(rngs):
    # BAD: the live-plane traffic stream handed to a repro.net engine,
    # through a local binding D2's call-site check cannot follow.
    rng = rngs.stream("live:traffic")
    return Engine(rng)


def weird(rngs):
    # BAD: a stream name no component owns.
    return Engine(rngs.stream("mystery:stuff"))
