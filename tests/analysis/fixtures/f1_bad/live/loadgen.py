"""F1 fixture: a live-component traffic generator."""


class TrafficGen:
    def __init__(self, rng):
        self.rng = rng
