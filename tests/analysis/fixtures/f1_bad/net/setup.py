"""F1 fixture: the fault stream leaking into the live component."""

from repro.live.loadgen import TrafficGen


def build(rngs):
    # BAD: net:faults is the fault decorator's stream; handing it to a
    # live-plane traffic generator couples their draw sequences.
    return TrafficGen(rngs.stream("net:faults"))
