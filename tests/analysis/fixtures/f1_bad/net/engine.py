"""F1 fixture: a net-component engine that accepts a generator."""


class Engine:
    def __init__(self, rng):
        self.rng = rng
