"""D7 fixture: decision-path code printing and logging instead of tracing."""

import logging

logger = logging.getLogger(__name__)


class NoisyEngine:
    def __init__(self) -> None:
        self.log = logger

    def attempt_exchange(self, u: int, v: int) -> None:
        print(f"exchanging {u} <-> {v}")
        logger.info("exchange %d %d", u, v)
        self.log.debug("var collected")
