"""D2 fixture: cross-stream RNG use inside the fault decorator."""


class LeakyFaults:
    def __init__(self, rngs, engine):
        self.rng = rngs.stream("prop:engine")  # wrong stream for net.faults
        self.engine = engine

    def drop(self) -> bool:
        # draws from the protocol engine's generator, not its own
        return float(self.engine.rng.random()) < 0.5
