"""D4 fixture: a two-message wire grammar."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    src: int
    dst: int


@dataclass(frozen=True)
class Ping(Message):
    nonce: int


@dataclass(frozen=True)
class Pong(Message):
    nonce: int
