"""D4 fixture: dispatcher missing the Pong arm, plus a dead arm and a
stale absorbed marker."""

from .messages import Message, Ping


class Retired:
    """Not part of the exported message grammar."""


class Engine:
    def __init__(self) -> None:
        self.last = None

    def _on_message(self, msg: Message) -> None:
        if isinstance(msg, Ping):
            self.last = msg
        elif isinstance(msg, Retired):
            self.last = None
        # reprolint: D4-absorbed: Ghost
