"""Engine mechanics: suppressions, baseline workflow, reporting, CLI."""

import json
from collections import Counter

from tools.reprolint.__main__ import main
from tools.reprolint.engine import (
    Finding,
    analyze,
    baseline_diff,
    load_baseline,
    save_baseline,
)

D3_VIOLATION = "for x in {3, 1, 2}:\n    y = x\n"


def _core_file(tmp_path, text, name="x.py"):
    """Lay out ``text`` as repro.core.<name> under a fixture root."""
    (tmp_path / "core").mkdir(exist_ok=True)
    (tmp_path / "core" / name).write_text(text, encoding="utf-8")
    return tmp_path


def _d3(tmp_path):
    return [f for f in analyze(tmp_path, repo=tmp_path) if f.rule == "D3"]


class TestSuppressions:
    def test_unsuppressed_violation_is_reported(self, tmp_path):
        _core_file(tmp_path, D3_VIOLATION)
        assert len(_d3(tmp_path)) == 1

    def test_same_line_suppression(self, tmp_path):
        _core_file(tmp_path, "for x in {3, 1, 2}:  # reprolint: disable=D3\n    y = x\n")
        assert _d3(tmp_path) == []

    def test_comment_line_above_suppression(self, tmp_path):
        _core_file(tmp_path, "# order-independent  # reprolint: disable=D3\n" + D3_VIOLATION)
        assert _d3(tmp_path) == []

    def test_disable_all(self, tmp_path):
        _core_file(tmp_path, "for x in {3, 1, 2}:  # reprolint: disable=all\n    y = x\n")
        assert _d3(tmp_path) == []

    def test_multi_rule_list(self, tmp_path):
        _core_file(
            tmp_path,
            "for x in {3, 1, 2}:  # reprolint: disable=D1, D3\n    y = x\n",
        )
        assert _d3(tmp_path) == []

    def test_other_rule_does_not_suppress(self, tmp_path):
        _core_file(tmp_path, "for x in {3, 1, 2}:  # reprolint: disable=D1\n    y = x\n")
        assert len(_d3(tmp_path)) == 1

    def test_trailing_comment_on_previous_statement_does_not_leak(self, tmp_path):
        # a suppression trailing statement N must not silence line N+1
        _core_file(tmp_path, "y = 1  # reprolint: disable=D3\n" + D3_VIOLATION)
        assert len(_d3(tmp_path)) == 1


class TestParseErrors:
    def test_unparseable_module_is_an_e999_finding(self, tmp_path):
        _core_file(tmp_path, "def broken(:\n")
        found = analyze(tmp_path, repo=tmp_path)
        assert [f.rule for f in found] == ["E999"]
        assert "unparseable module" in found[0].message


class TestBaseline:
    def _finding(self, line=3, message="unsorted set iteration"):
        return Finding(rule="D3", path="core/x.py", line=line, col=4, message=message)

    def test_fingerprint_is_line_independent(self):
        assert self._finding(line=3).fingerprint == self._finding(line=99).fingerprint

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self._finding(), self._finding(line=9)])
        counts = load_baseline(path)
        assert counts == Counter({self._finding().fingerprint: 2})

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == Counter()

    def test_diff_splits_new_and_stale(self):
        known, novel = self._finding(), self._finding(message="other defect")
        baseline = Counter({known.fingerprint: 1, "D9::gone.py::vanished": 1})
        new, stale = baseline_diff([known, novel], baseline)
        assert new == [novel]
        assert stale == ["D9::gone.py::vanished"]

    def test_diff_is_a_multiset(self):
        f = self._finding()
        new, stale = baseline_diff([f, f], Counter({f.fingerprint: 1}))
        assert new == [f]  # only one occurrence is grandfathered
        assert stale == []


class TestCli:
    def test_usage_error_on_bad_root(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path / "absent")]) == 3
        assert "not a directory" in capsys.readouterr().err

    def test_new_findings_exit_1(self, tmp_path, capsys):
        root = _core_file(tmp_path, D3_VIOLATION)
        baseline = tmp_path / "baseline.json"
        code = main(["--root", str(root), "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 1
        assert "D3" in captured.out
        assert "1 new finding(s)" in captured.err

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = _core_file(tmp_path, D3_VIOLATION)
        baseline = tmp_path / "baseline.json"
        assert main(["--root", str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["--root", str(root), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_stale_baseline_exit_2(self, tmp_path, capsys):
        root = _core_file(tmp_path, D3_VIOLATION)
        baseline = tmp_path / "baseline.json"
        main(["--root", str(root), "--baseline", str(baseline), "--update-baseline"])
        _core_file(tmp_path, "for x in sorted({3, 1, 2}):\n    y = x\n")
        code = main(["--root", str(root), "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 2
        assert "baseline is stale" in captured.err
        assert "make analyze-baseline" in captured.err

    def test_no_baseline_reports_everything(self, tmp_path, capsys):
        root = _core_file(tmp_path, D3_VIOLATION)
        baseline = tmp_path / "baseline.json"
        main(["--root", str(root), "--baseline", str(baseline), "--update-baseline"])
        code = main(["--root", str(root), "--baseline", str(baseline), "--no-baseline"])
        capsys.readouterr()
        assert code == 1

    def test_select_restricts_rules(self, tmp_path, capsys):
        root = _core_file(tmp_path, "import random\n" + D3_VIOLATION)
        code = main(["--root", str(root), "--baseline", str(tmp_path / "b.json"),
                     "--select", "D1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "D1" in captured.out
        assert "D3" not in captured.out

    def test_json_format(self, tmp_path, capsys):
        root = _core_file(tmp_path, D3_VIOLATION)
        code = main(["--root", str(root), "--baseline", str(tmp_path / "b.json"),
                     "--format", "json"])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert payload[0]["rule"] == "D3"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D1", "D2", "D3", "D4", "D5", "D6", "D7"):
            assert rule_id in out
