"""Strict typing gate for the deterministic kernel and the live plane.

The mypy run is skipped on images without mypy (the container bakes no
extra toolchain); the annotation hygiene checks below always run.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: packages under the strict gate (and the always-on annotation proxy).
STRICT_PACKAGES = ("core", "net", "metrics", "topology", "live", "obs")


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_kernel_packages():
    proc = subprocess.run(
        ["mypy", "--strict", "-p", "repro.core", "-p", "repro.net",
         "-p", "repro.metrics", "-p", "repro.topology", "-p", "repro.live",
         "-p", "repro.obs"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_messages_module_has_no_type_ignores():
    text = (REPO / "src" / "repro" / "net" / "messages.py").read_text(encoding="utf-8")
    assert "type: ignore" not in text


def test_live_and_obs_type_ignore_inventory_is_pinned():
    """No *new* ``type: ignore`` in repro.live / repro.obs (ISSUE 8).

    The grandfathered ignores below are dynamic-dispatch seams (event
    payload attrs, dataclass ``**kwargs`` construction); anything beyond
    them must be fixed with types, not silenced.
    """
    inventory = {}
    for pkg in ("live", "obs"):
        for path in sorted((REPO / "src" / "repro" / pkg).rglob("*.py")):
            n = path.read_text(encoding="utf-8").count("type: ignore")
            if n:
                inventory[f"{pkg}/{path.name}"] = n
    assert inventory == {
        "live/codec.py": 1,
        "obs/monitor.py": 5,
        # one per emit branch: the streaming and buffered paths each
        # construct the event through the same dynamic **payload seam
        "obs/trace.py": 2,
    }, inventory


def test_kernel_signatures_are_fully_annotated():
    """Cheap always-on proxy for the strict gate: every function in the
    strict packages annotates all parameters and its return type."""
    import ast

    missing = []
    for pkg in STRICT_PACKAGES:
        for path in sorted((REPO / "src" / "repro" / pkg).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = node.args
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                          args.vararg, args.kwarg):
                    if a is None or a.arg in ("self", "cls"):
                        continue
                    if a.annotation is None:
                        missing.append(f"{path.name}:{node.lineno} {node.name}({a.arg})")
                if node.returns is None:
                    missing.append(f"{path.name}:{node.lineno} {node.name} -> ?")
    assert missing == [], "\n".join(missing)
