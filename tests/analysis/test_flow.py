"""The flow/concurrency rule family (F1/C1/C2/G1), the parallel scanner,
and the suppression audit.

Fixture tests pin each rule to its known-bad tree; acceptance tests
mutate copies of the *real* grammar/codec and assert analyze fails; the
``--jobs`` tests pin byte-identical serial/parallel output.
"""

import json
from pathlib import Path

from tools.reprolint.__main__ import main
from tools.reprolint.engine import analyze, analyze_full

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _findings(fixture: str, rule: str):
    return [
        f
        for f in analyze(FIXTURES / fixture, repo=REPO, select=[rule])
        if f.rule == rule
    ]


class TestF1StreamProvenance:
    def test_flags_cross_component_flows_and_unowned_streams(self):
        found = _findings("f1_bad", "F1")
        messages = " | ".join(f.message for f in found)
        # through a local binding (the hole D2 cannot see)
        assert "'live:traffic' flows into `Engine`" in messages
        # direct argument flow, in the other direction
        assert "'net:faults' flows into `TrafficGen`" in messages
        # a stream no component owns
        assert "no registered owner" in messages
        assert len(found) == 3

    def test_real_tree_flows_all_respect_ownership(self):
        found = [
            f
            for f in analyze(REPO / "src" / "repro", repo=REPO, select=["F1"])
            if f.rule == "F1"
        ]
        assert found == [], "\n".join(f.render() for f in found)


class TestC1AwaitInterleaving:
    def test_flags_stale_write_and_sinkless_tasks(self):
        found = _findings("c1_bad", "C1")
        messages = " | ".join(f.message for f in found)
        assert "`self.version` was read before an `await`" in messages
        assert "fire-and-forget task" in messages
        assert "task bound to `task` has no exception sink" in messages
        # refresh_ok / spawn_sunk / spawn_returned stay clean
        assert len(found) == 3

    def test_revalidated_write_is_clean(self):
        found = _findings("c1_bad", "C1")
        lines = {f.line for f in found}
        # refresh_ok revalidates (line ~22): no finding there
        assert all(f.line < 20 or f.line > 25 for f in found), lines


class TestC2CallbackSafety:
    def test_flags_raising_callbacks_only(self):
        found = _findings("c2_bad", "C2")
        messages = " | ".join(f.message for f in found)
        assert "`BadProtocol.datagram_received`" in messages
        assert "`BadProtocol.error_received`" in messages
        # GoodProtocol: guarded inline, delegated to a safe helper, and
        # a no-risk body — none flagged
        assert "GoodProtocol" not in messages
        assert len(found) == 2


class TestG1CodecGrammarDrift:
    def test_flags_every_drift_mode(self):
        found = _findings("g1_bad", "G1")
        messages = " | ".join(f.message for f in found)
        assert "`Ping.payload` is annotated `dict[str, int]`" in messages
        assert '`encode` has no `kind == "float"` arm' in messages
        assert "MSG_TYPES names 'PONG' but no message class" in messages
        assert "type_name 'PONG_X' which MSG_TYPES does not list" in messages
        assert "the message grammar changed" in messages
        assert len(found) == 5

    def test_fingerprint_literal_matches_runtime(self):
        """The static rule and the runtime helper derive the same hash."""
        import sys

        sys.path.insert(0, str(REPO / "src"))
        try:
            from repro.live import codec
        finally:
            sys.path.pop(0)
        assert codec.GRAMMAR_FINGERPRINT == codec.grammar_fingerprint()


class TestG1Acceptance:
    """The ISSUE's acceptance check: deleting one codec field arm from a
    copy of the real codec makes G1 fire."""

    ARM = '            elif kind == "float":'

    def _copy_tree(self, tmp_path):
        src = REPO / "src" / "repro"
        for rel in ("net/messages.py", "live/codec.py"):
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text((src / rel).read_text(encoding="utf-8"),
                            encoding="utf-8")
        return tmp_path

    def test_unmutated_copy_is_g1_clean(self, tmp_path):
        root = self._copy_tree(tmp_path)
        found = [f for f in analyze(root, repo=tmp_path, select=["G1"])]
        assert found == [], "\n".join(f.render() for f in found)

    def test_deleting_a_decode_arm_fails_analyze(self, tmp_path):
        root = self._copy_tree(tmp_path)
        codec = root / "live" / "codec.py"
        text = codec.read_text(encoding="utf-8")
        assert self.ARM in text, "codec arm shape changed; update fixture"
        start = text.index(self.ARM)
        end = text.index("            elif kind ==", start + len(self.ARM))
        codec.write_text(text[:start] + text[end:], encoding="utf-8")
        found = [f for f in analyze(root, repo=tmp_path, select=["G1"])]
        assert any(
            '`decode` has no `kind == "float"` arm' in f.message for f in found
        ), "\n".join(f.render() for f in found)

    def test_adding_a_grammar_field_requires_fingerprint_update(self, tmp_path):
        root = self._copy_tree(tmp_path)
        messages = root / "net" / "messages.py"
        text = messages.read_text(encoding="utf-8")
        anchor = "    xid: int\n\n    type_name: ClassVar[str] = \"EXCHANGE_COMMIT\""
        assert anchor in text, "grammar shape changed; update fixture"
        messages.write_text(
            text.replace(anchor, "    xid: int\n    hops: int\n\n"
                         "    type_name: ClassVar[str] = \"EXCHANGE_COMMIT\""),
            encoding="utf-8",
        )
        found = [f for f in analyze(root, repo=tmp_path, select=["G1"])]
        assert any("bump WIRE_VERSION" in f.message for f in found)


class TestParallelJobs:
    def test_jobs_output_identical_on_fixtures(self):
        # run over a tree that actually produces findings
        for fixture in ("f1_bad", "c1_bad", "c2_bad", "g1_bad", "d1_bad"):
            root = FIXTURES / fixture
            assert analyze(root, repo=REPO) == analyze(root, repo=REPO, jobs=4), fixture

    def test_jobs_output_identical_on_real_tree(self):
        root = REPO / "src" / "repro"
        assert analyze(root, repo=REPO) == analyze(root, repo=REPO, jobs=4)

    def test_cli_output_byte_identical(self, capsys):
        args = ["--root", str(FIXTURES / "g1_bad"), "--no-baseline",
                "--format", "json", "--select", "G1"]
        assert main(args) == 1
        serial = capsys.readouterr()
        assert main([*args, "--jobs", "4"]) == 1
        parallel = capsys.readouterr()
        assert parallel.out == serial.out

    def test_bad_jobs_value_is_usage_error(self, capsys):
        assert main(["--jobs", "0"]) == 3
        assert "--jobs" in capsys.readouterr().err

    def test_parse_error_surfaces_from_workers(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "broken.py").write_text("def broken(:\n",
                                                     encoding="utf-8")
        found = analyze(tmp_path, repo=tmp_path, jobs=2)
        assert [f.rule for f in found] == ["E999"]


class TestSuppressionAudit:
    def _tree(self, tmp_path, text):
        (tmp_path / "core").mkdir(exist_ok=True)
        (tmp_path / "core" / "x.py").write_text(text, encoding="utf-8")
        return tmp_path

    def test_used_suppression_is_not_stale(self, tmp_path):
        root = self._tree(
            tmp_path, "for x in {3, 1, 2}:  # reprolint: disable=D3\n    y = x\n"
        )
        _, audit = analyze_full(root, repo=tmp_path)
        assert audit.declared == [("core/x.py", 1, "D3")]
        assert audit.stale == []

    def test_dead_suppression_is_stale(self, tmp_path):
        root = self._tree(
            tmp_path, "for x in sorted({3, 1, 2}):  # reprolint: disable=D3\n    y = x\n"
        )
        _, audit = analyze_full(root, repo=tmp_path)
        assert audit.stale == [("core/x.py", 1, "D3")]

    def test_audit_agrees_across_jobs(self, tmp_path):
        root = self._tree(
            tmp_path,
            "for x in {3, 1, 2}:  # reprolint: disable=D3\n    y = x\n"
            "z = sorted({1})  # reprolint: disable=D1\n",
        )
        _, serial = analyze_full(root, repo=tmp_path)
        _, parallel = analyze_full(root, repo=tmp_path, jobs=2)
        assert serial.declared == parallel.declared
        assert serial.stale == parallel.stale
        assert serial.stale == [("core/x.py", 3, "D1")]

    def test_cli_list_suppressions(self, tmp_path, capsys):
        root = self._tree(
            tmp_path, "for x in sorted({3, 1, 2}):  # reprolint: disable=D3\n    y = x\n"
        )
        code = main(["--root", str(root), "--list-suppressions"])
        captured = capsys.readouterr()
        assert code == 1
        assert "core/x.py:1: suppression 'D3' masks no finding" in captured.out
        assert "1 stale suppression(s) of 1 declared" in captured.err

    def test_cli_list_suppressions_clean_exit_0(self, tmp_path, capsys):
        root = self._tree(
            tmp_path, "for x in {3, 1, 2}:  # reprolint: disable=D3\n    y = x\n"
        )
        assert main(["--root", str(root), "--list-suppressions"]) == 0
        assert "0 stale suppression(s)" in capsys.readouterr().err

    def test_real_tree_has_no_stale_suppressions(self):
        _, audit = analyze_full(REPO / "src" / "repro", repo=REPO)
        assert audit.stale == [], audit.stale


class TestJsonOut:
    def test_json_out_writes_findings_file(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        code = main(["--root", str(FIXTURES / "c2_bad"), "--no-baseline",
                     "--select", "C2", "--json-out", str(out)])
        capsys.readouterr()
        assert code == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert {f["rule"] for f in payload} == {"C2"}
        assert all({"rule", "path", "line", "col", "message"} <= set(f)
                   for f in payload)

    def test_json_out_empty_when_clean(self, tmp_path, capsys):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "x.py").write_text("y = 1\n", encoding="utf-8")
        out = tmp_path / "findings.json"
        code = main(["--root", str(tmp_path), "--no-baseline",
                     "--json-out", str(out)])
        capsys.readouterr()
        assert code == 0
        assert json.loads(out.read_text(encoding="utf-8")) == []


class TestSummariesMirrorD5:
    def test_overlay_mutator_inventories_stay_in_sync(self):
        from tools.reprolint.rules import ExchangeAtomicity
        from tools.reprolint.summaries import OVERLAY_ATTRS, OVERLAY_MUTATORS

        assert OVERLAY_MUTATORS == ExchangeAtomicity.MUTATOR_CALLS
        assert OVERLAY_ATTRS == ExchangeAtomicity.MUTATED_ATTRS
