"""Tests for the reprolint static analyzer (tools/reprolint)."""
