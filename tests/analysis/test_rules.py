"""Every reprolint rule (D1-D7) catches its known-bad fixture, and the
real tree under ``src/repro`` is clean modulo the checked-in baseline.
"""

from pathlib import Path

from tools.reprolint import analyze
from tools.reprolint.engine import baseline_diff, load_baseline

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _findings(fixture: str, rule: str):
    return [f for f in analyze(FIXTURES / fixture, repo=REPO) if f.rule == rule]


class TestKnownBadFixtures:
    def test_d1_flags_wallclock_and_unseeded_randomness(self):
        found = _findings("d1_bad", "D1")
        messages = " | ".join(f.message for f in found)
        assert "stdlib `random` imported" in messages
        assert "time.time" in messages
        assert "np.random.seed" in messages
        assert "np.random.rand" in messages
        assert "unseeded `default_rng()`" in messages
        assert len(found) == 5

    def test_d1_wallclock_allowlist_scopes_to_repro_live(self):
        """`repro.live` may read wall clocks; everywhere else may not,
        and unseeded randomness stays forbidden even inside the
        allowlisted package."""
        found = _findings("d1_scoped", "D1")
        by_path = {}
        for f in found:
            by_path.setdefault(Path(f.path).parent.name, []).append(f.message)
        # live/: two wall-clock calls sanctioned; only default_rng flagged.
        assert len(by_path["live"]) == 1
        assert "unseeded `default_rng()`" in by_path["live"][0]
        # core/: the identical call is still a violation.
        assert len(by_path["core"]) == 1
        assert "time.monotonic" in by_path["core"][0]
        assert len(found) == 2

    def test_d1_resolves_import_aliases(self):
        """`import time as _time` (and friends) cannot dodge the rule:
        aliases resolve to canonical names before the deny-set lookup,
        and the allowlist still covers the resolved calls in
        `repro.obs.prof`."""
        found = _findings("d1_alias", "D1")
        by_path = {}
        for f in found:
            by_path.setdefault(Path(f.path).parent.name, []).append(f.message)
        assert "obs" not in by_path  # repro.obs.prof is allowlisted
        core = " | ".join(by_path["core"])
        assert "time.monotonic" in core
        assert "time.perf_counter_ns" in core
        assert "datetime.datetime.now" in core
        assert len(by_path["core"]) == 4
        assert len(found) == 4

    def test_d2_flags_cross_stream_draws(self):
        found = _findings("d2_bad", "D2")
        messages = " | ".join(f.message for f in found)
        assert "stream 'prop:engine' requested" in messages
        assert "cross-stream draw `self.engine.rng.random()`" in messages
        assert len(found) == 2

    def test_d3_flags_unsorted_set_iteration(self):
        found = _findings("d3_bad", "D3")
        wheres = " | ".join(f.message for f in found)
        assert "comprehension" in wheres  # [x for x in uniq]
        assert "for-loop" in wheres  # for c in {3, 1, 2}
        assert "list() argument" in wheres  # list(uniq)
        assert len(found) == 3

    def test_d4_flags_missing_dead_and_stale_arms(self):
        found = _findings("d4_bad", "D4")
        messages = " | ".join(f.message for f in found)
        assert "`Pong` has no dispatch arm" in messages
        assert "dead dispatch arm: `Retired`" in messages
        assert "stale D4-absorbed marker: `Ghost`" in messages
        assert len(found) == 3

    def test_d5_flags_out_of_band_overlay_mutation(self):
        found = _findings("d5_bad", "D5")
        messages = " | ".join(f.message for f in found)
        assert "self.overlay.add_edge" in messages
        assert "`self.overlay.embedding`" in messages
        assert "`self.overlay.embedding_version`" in messages
        assert "direct neighbor-set mutation" in messages
        assert len(found) == 4

    def test_d6_flags_unvalidated_config_field(self):
        found = _findings("d6_bad", "D6")
        assert len(found) == 1
        assert "`ghost` is never referenced by __post_init__" in found[0].message

    def test_d7_flags_print_and_logging_on_decision_paths(self):
        found = _findings("d7_bad", "D7")
        messages = " | ".join(f.message for f in found)
        assert "`logging` imported" in messages
        assert "bare `print()`" in messages
        assert "logging call `logger.info()`" in messages
        assert "logging call `self.log.debug()`" in messages
        assert "logging call `logging.getLogger()`" in messages
        assert len(found) == 5


class TestDispatchMutation:
    """The ISSUE's acceptance check: deleting one dispatch arm from a
    copy of the real engine makes D4 fire."""

    ARM = (
        "            elif isinstance(msg, ExchangeCommit):\n"
        "                self._on_commit(msg)\n"
    )

    def test_deleting_a_dispatch_arm_breaks_d4(self, tmp_path):
        src_net = REPO / "src" / "repro" / "net"
        net = tmp_path / "net"
        net.mkdir()
        (net / "messages.py").write_text(
            (src_net / "messages.py").read_text(encoding="utf-8"), encoding="utf-8"
        )
        engine_text = (src_net / "engine.py").read_text(encoding="utf-8")
        assert self.ARM in engine_text, "dispatch arm shape changed; update fixture"
        (net / "engine.py").write_text(
            engine_text.replace(self.ARM, ""), encoding="utf-8"
        )
        found = [f for f in analyze(tmp_path, repo=tmp_path) if f.rule == "D4"]
        assert any(
            "`ExchangeCommit` has no dispatch arm" in f.message for f in found
        )

    def test_unmutated_copy_is_d4_clean(self, tmp_path):
        src_net = REPO / "src" / "repro" / "net"
        net = tmp_path / "net"
        net.mkdir()
        for name in ("messages.py", "engine.py"):
            (net / name).write_text(
                (src_net / name).read_text(encoding="utf-8"), encoding="utf-8"
            )
        assert [f for f in analyze(tmp_path, repo=tmp_path) if f.rule == "D4"] == []


class TestRealTree:
    def test_src_repro_is_clean_modulo_baseline(self):
        findings = analyze(REPO / "src" / "repro", repo=REPO)
        baseline = load_baseline(REPO / "tools" / "reprolint" / "baseline.json")
        new, stale = baseline_diff(findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)
        assert stale == [], "stale baseline; run `make analyze-baseline`"

    def test_every_rule_registers(self):
        from tools.reprolint import iter_rules

        assert [r.id for r in iter_rules()] == [
            "C1", "C2", "D1", "D2", "D3", "D4", "D5", "D6", "D7", "F1", "G1",
        ]
