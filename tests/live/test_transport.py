"""Transport parity (satellite: `unregister` across every backend) and
UDP-specific delivery semantics.

The parity class drives the same register → deliver → unregister →
absorb scenario through all three Transport implementations —
:class:`SimTransport`, :class:`FaultyTransport` and
:class:`UdpTransport` — asserting identical protocol-visible behavior:
a registered slot's handler runs, an unregistered slot absorbs messages
(delivery still counted, handler never called), and ``unregister`` is
idempotent.  UDP cases are skipped where loopback sockets are
unavailable.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.live.clock import LiveScheduler
from repro.live.codec import encode, encoded_size
from repro.live.transport import UdpTransport, udp_loopback_available
from repro.net.faults import FaultyTransport
from repro.net.messages import VarProbe
from repro.net.transport import SimTransport, Transport
from repro.netsim.engine import Simulator

LOOPBACK = udp_loopback_available()
needs_loopback = pytest.mark.skipif(
    not LOOPBACK, reason="loopback UDP unavailable in this environment"
)


class Scenario:
    """register slot 1, optionally unregister (twice — idempotence),
    send one probe, report (handler calls, stats)."""

    def __init__(self, unregister: bool) -> None:
        self.unregister = unregister
        self.msg = VarProbe(src=0, dst=1, cycle=7)

    def drive_sim(self, overlay, wrap_faulty: bool):
        sim = Simulator()
        transport: Transport = SimTransport(sim, overlay)
        if wrap_faulty:
            transport = FaultyTransport(transport, np.random.default_rng(0))
        seen: list = []
        transport.register(1, seen.append)
        if self.unregister:
            transport.unregister(1)
            transport.unregister(1)  # idempotent: second detach is a no-op
        transport.send(self.msg)
        sim.run()
        return seen, transport.stats

    def drive_udp(self):
        async def body():
            loop = asyncio.get_running_loop()
            sched = LiveScheduler(loop, speedup=60.0)
            transport = await UdpTransport.create(sched, 2)
            try:
                seen: list = []
                transport.register(1, seen.append)
                if self.unregister:
                    transport.unregister(1)
                    transport.unregister(1)
                transport.send(self.msg)
                deadline = loop.time() + 2.0
                while loop.time() < deadline and transport.stats.total_delivered < 1:
                    await asyncio.sleep(0.005)
                await asyncio.sleep(0.02)  # absorb any stray duplicate work
                return seen, transport.stats
            finally:
                transport.close()

        return asyncio.run(body())


class TestUnregisterParity:
    """The same scenario behaves identically on every backend."""

    @pytest.mark.parametrize("backend", ["sim", "faulty", "udp"])
    def test_registered_slot_receives(self, backend, gnutella):
        scenario = Scenario(unregister=False)
        if backend == "udp":
            if not LOOPBACK:
                pytest.skip("loopback UDP unavailable")
            seen, stats = scenario.drive_udp()
        else:
            seen, stats = scenario.drive_sim(gnutella, wrap_faulty=backend == "faulty")
        assert seen == [scenario.msg]
        assert stats.sent["VAR_PROBE"] == 1
        assert stats.delivered["VAR_PROBE"] == 1

    @pytest.mark.parametrize("backend", ["sim", "faulty", "udp"])
    def test_unregistered_slot_absorbs(self, backend, gnutella):
        scenario = Scenario(unregister=True)
        if backend == "udp":
            if not LOOPBACK:
                pytest.skip("loopback UDP unavailable")
            seen, stats = scenario.drive_udp()
        else:
            seen, stats = scenario.drive_sim(gnutella, wrap_faulty=backend == "faulty")
        assert seen == []  # handler detached: message absorbed silently
        assert stats.delivered["VAR_PROBE"] == 1  # ... but delivery is counted

    def test_every_backend_satisfies_the_protocol_surface(self):
        for cls in (SimTransport, FaultyTransport, UdpTransport):
            for name in ("register", "unregister", "send"):
                assert callable(getattr(cls, name)), f"{cls.__name__}.{name}"


@needs_loopback
class TestUdpSemantics:
    """Behavior specific to the real datagram path."""

    @staticmethod
    def _run(body):
        return asyncio.run(body())

    def test_garbage_datagram_counted_not_raised(self):
        async def body():
            loop = asyncio.get_running_loop()
            transport = await UdpTransport.create(LiveScheduler(loop), 2)
            try:
                transport.nodes[0].sendto(b"not a frame", transport.nodes[1].address)
                deadline = loop.time() + 2.0
                while loop.time() < deadline and transport.codec_errors < 1:
                    await asyncio.sleep(0.005)
                return transport.codec_errors, transport.stats.total_delivered
            finally:
                transport.close()

        codec_errors, delivered = self._run(body)
        assert codec_errors == 1
        assert delivered == 0

    def test_misrouted_frame_counted_and_dropped(self):
        async def body():
            loop = asyncio.get_running_loop()
            transport = await UdpTransport.create(LiveScheduler(loop), 2)
            try:
                seen: list = []
                transport.register(1, seen.append)
                # a frame addressed to slot 0 lands on slot 1's socket
                stray = VarProbe(src=0, dst=0, cycle=1)
                transport.nodes[0].sendto(encode(stray), transport.nodes[1].address)
                deadline = loop.time() + 2.0
                while loop.time() < deadline and transport.misrouted < 1:
                    await asyncio.sleep(0.005)
                return transport.misrouted, seen
            finally:
                transport.close()

        misrouted, seen = self._run(body)
        assert misrouted == 1
        assert seen == []

    def test_extra_delay_defers_transmit_on_the_scheduler(self):
        async def body():
            loop = asyncio.get_running_loop()
            sched = LiveScheduler(loop, speedup=1000.0)
            transport = await UdpTransport.create(sched, 2)
            try:
                got_at: list[float] = []
                transport.register(1, lambda m: got_at.append(sched.now))
                # 5000 protocol ms = 5 protocol s = 5 ms wall at 1000x
                transport.send(VarProbe(src=0, dst=1, cycle=1), extra_delay_ms=5000.0)
                deadline = loop.time() + 2.0
                while loop.time() < deadline and not got_at:
                    await asyncio.sleep(0.005)
                return got_at
            finally:
                transport.close()

        got_at = self._run(body)
        assert got_at and got_at[0] >= 5.0

    def test_wire_bytes_and_closed_transport(self):
        async def body():
            loop = asyncio.get_running_loop()
            transport = await UdpTransport.create(LiveScheduler(loop), 2)
            msg = VarProbe(src=0, dst=1, cycle=3)
            transport.send(msg)
            wire = transport.wire_bytes_sent
            transport.close()
            transport.close()  # idempotent
            transport.send(msg)  # dropped silently after close
            return wire, transport.wire_bytes_sent, msg

        wire, after_close, msg = self._run(body)
        assert wire == encoded_size(msg)
        assert after_close == wire
