"""LoopLagSampler: one-sided scheduling lag over pure asyncio (no sockets)."""

from __future__ import annotations

import asyncio

import pytest

from repro.live.lag import LoopLagSampler


def run(coro_fn, *args):
    return asyncio.run(coro_fn(*args))


class TestLoopLagSampler:
    def test_interval_must_be_positive(self):
        async def body():
            loop = asyncio.get_running_loop()
            with pytest.raises(ValueError, match="interval"):
                LoopLagSampler(loop, interval=0.0)

        run(body)

    def test_idle_loop_reports_small_lag(self):
        async def body():
            sampler = LoopLagSampler(asyncio.get_running_loop(), interval=0.01)
            sampler.start()
            await asyncio.sleep(0.08)
            sampler.stop()
            return sampler.stats()

        stats = run(body)
        assert stats["samples"] >= 3
        assert stats["mean_ms"] >= 0.0  # lag is clamped one-sided
        assert stats["max_ms"] >= stats["mean_ms"]

    def test_blocked_loop_shows_up_as_lag(self):
        async def body():
            loop = asyncio.get_running_loop()
            sampler = LoopLagSampler(loop, interval=0.01)
            sampler.start()
            await asyncio.sleep(0.02)
            # monopolize the loop: callbacks scheduled during this spin
            # cannot fire until it yields
            deadline = loop.time() + 0.1
            while loop.time() < deadline:
                pass
            await asyncio.sleep(0.02)
            sampler.stop()
            return sampler.stats()

        stats = run(body)
        assert stats["samples"] >= 1
        assert stats["max_ms"] > 50.0  # the 100 ms spin dwarfs the interval

    def test_start_and_stop_are_idempotent(self):
        async def body():
            sampler = LoopLagSampler(asyncio.get_running_loop(), interval=0.01)
            sampler.start()
            sampler.start()
            await asyncio.sleep(0.03)
            sampler.stop()
            sampler.stop()
            frozen = sampler.stats()["samples"]
            await asyncio.sleep(0.03)
            return frozen, sampler.stats()["samples"]

        frozen, later = run(body)
        assert later == frozen  # stop cancels the pending tick

    def test_empty_stats_are_zeroed(self):
        async def body():
            return LoopLagSampler(asyncio.get_running_loop()).stats()

        assert run(body) == {"mean_ms": 0.0, "max_ms": 0.0, "samples": 0}
