"""Wire-codec properties: every message type round-trips byte-exactly,
malformed frames are refused with :class:`CodecError`, and the telemetry
size model (``size_bytes``) stays deliberately distinct from the actual
wire cost (``encoded_size``) while growing identically per list element.
"""

from __future__ import annotations

import random
from dataclasses import fields
from typing import get_type_hints

import pytest

from repro.live.codec import (
    MESSAGE_CLASSES,
    WIRE_VERSION,
    CodecError,
    decode,
    encode,
    encoded_size,
    frame,
    unframe,
)
from repro.net.messages import INT_BYTES, MSG_TYPES, Message, Walk

N_CASES = 50  # randomized instances per message type


def _random_instance(cls: type[Message], rng: random.Random) -> Message:
    """A randomized instance of ``cls``, fields drawn by annotated type."""
    hints = get_type_hints(cls)
    kwargs: dict[str, object] = {}
    for f in fields(cls):
        hint = hints[f.name]
        if hint is bool:
            kwargs[f.name] = rng.random() < 0.5
        elif hint is int:
            # src/dst are header i32; payload ints ride an i64 lane.
            bound = 2**31 - 1 if f.name in ("src", "dst") else 2**62
            kwargs[f.name] = rng.randint(-bound, bound)
        elif hint is float:
            kwargs[f.name] = rng.uniform(-1e9, 1e9)
        elif hint is str:
            kwargs[f.name] = "".join(
                rng.choice("abcdefg-πλ") for _ in range(rng.randint(0, 12))
            )
        elif hint == tuple[int, ...]:
            kwargs[f.name] = tuple(
                rng.randint(-(2**31) + 1, 2**31 - 1)
                for _ in range(rng.randint(0, 8))
            )
        else:  # pragma: no cover - new field type needs a generator rule
            raise AssertionError(f"no generator for {cls.__name__}.{f.name}: {hint}")
    return cls(**kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("type_name", MSG_TYPES)
    def test_every_type_round_trips(self, type_name):
        """decode(encode(m)) == m for randomized instances of every
        message class in the wire grammar (frozen-dataclass equality)."""
        cls = MESSAGE_CLASSES[type_name]
        rng = random.Random(hash(type_name) & 0xFFFF)
        for _ in range(N_CASES):
            msg = _random_instance(cls, rng)
            data = encode(msg)
            again = decode(data)
            assert again == msg
            assert type(again) is cls
            assert len(data) == encoded_size(msg)

    def test_grammar_is_complete(self):
        """Every MSG_TYPES tag has a codec-known class — adding a
        message type without a wire rule fails here, not in production."""
        assert tuple(MESSAGE_CLASSES) == MSG_TYPES

    def test_stream_framing_round_trips_in_order(self):
        rng = random.Random(7)
        msgs = [
            _random_instance(MESSAGE_CLASSES[t], rng)
            for t in MSG_TYPES
            for _ in range(3)
        ]
        buffer = b"".join(frame(m) for m in msgs)
        out = []
        while True:
            msg, buffer = unframe(buffer)
            if msg is None:
                break
            out.append(msg)
        assert out == msgs
        assert buffer == b""

    def test_unframe_waits_for_complete_frame(self):
        data = frame(Walk(src=1, dst=2, origin=1, ttl=3, cycle=4, path=(1, 5)))
        for cut in range(len(data)):
            msg, rest = unframe(data[:cut])
            assert msg is None
            assert rest == data[:cut]


class TestMalformedFrames:
    GOOD = encode(Walk(src=0, dst=1, origin=0, ttl=5, cycle=2, path=(0, 3)))

    def test_wrong_version_refused(self):
        bad = bytes([WIRE_VERSION + 1]) + self.GOOD[1:]
        with pytest.raises(CodecError, match="wire version"):
            decode(bad)

    def test_unknown_tag_refused(self):
        bad = self.GOOD[:1] + bytes([200]) + self.GOOD[2:]
        with pytest.raises(CodecError, match="unknown message tag"):
            decode(bad)

    def test_truncation_refused_at_every_cut(self):
        for cut in range(len(self.GOOD)):
            with pytest.raises(CodecError, match="truncated"):
                decode(self.GOOD[:cut])

    def test_trailing_bytes_refused(self):
        with pytest.raises(CodecError, match="trailing bytes"):
            decode(self.GOOD + b"\x00")

    def test_unknown_message_class_refused_on_encode(self):
        class Rogue(Message):
            type_name = "ROGUE"

        with pytest.raises(CodecError, match="not in the wire grammar"):
            encode(Rogue(src=0, dst=1))


class TestSizeModelVsWire:
    """``size_bytes`` is the paper's §4.3 telemetry model; ``encoded_size``
    is the actual codec cost.  Distinct by design, but both must grow
    per list element so message accounting scales the same way."""

    def test_models_are_distinct(self):
        msg = Walk(src=0, dst=1, origin=0, ttl=5, cycle=2, path=(1, 2, 3))
        assert msg.size_bytes() != encoded_size(msg)

    def test_both_grow_per_path_element(self):
        short = Walk(src=0, dst=1, origin=0, ttl=5, cycle=2, path=())
        long = Walk(src=0, dst=1, origin=0, ttl=5, cycle=2, path=tuple(range(10)))
        assert long.size_bytes() - short.size_bytes() == 10 * INT_BYTES
        assert encoded_size(long) - encoded_size(short) == 10 * 4  # i32 lane
