"""LiveScheduler semantics: protocol-seconds arithmetic over the asyncio
clock, the Simulator scheduling vocabulary (schedule / schedule_at /
cancel), periodic processes, and the epoch-reset rule.

These tests run pure asyncio — no sockets — so they are never skipped.
The speedups are large so every wall wait stays in the tens of
milliseconds.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live.clock import LiveScheduler


def run(coro_fn, *args):
    return asyncio.run(coro_fn(*args))


class TestClockArithmetic:
    def test_now_advances_at_speedup_rate(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop(), speedup=1000.0)
            await asyncio.sleep(0.05)
            return sched.now

        now = run(body)
        # 0.05 wall s at 1000x is 50 protocol s; generous CI tolerance.
        assert 40.0 < now < 500.0

    def test_wall_deadline_inverts_now(self):
        async def body():
            loop = asyncio.get_running_loop()
            sched = LiveScheduler(loop, speedup=60.0)
            # protocol t=120 must map 2 wall seconds past the epoch
            assert sched.wall_deadline(120.0) == pytest.approx(
                sched.wall_deadline(0.0) + 2.0
            )

        run(body)

    def test_rejects_nonpositive_speedup(self):
        async def body():
            loop = asyncio.get_running_loop()
            with pytest.raises(ValueError, match="speedup"):
                LiveScheduler(loop, speedup=0.0)

        run(body)


class TestScheduling:
    def test_schedule_fires_after_protocol_delay(self):
        async def body():
            loop = asyncio.get_running_loop()
            sched = LiveScheduler(loop, speedup=1000.0)
            fired = asyncio.Event()
            seen = []
            sched.schedule(10.0, lambda tag: (seen.append(tag), fired.set()), "x")
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return seen, sched.now

        seen, now = run(body)
        assert seen == ["x"]
        assert now >= 10.0  # 10 protocol s = 10 ms wall at 1000x

    def test_schedule_rejects_negative_delay(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop())
            with pytest.raises(ValueError, match="delay"):
                sched.schedule(-1.0, lambda: None)

        run(body)

    def test_cancel_prevents_firing(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop(), speedup=1000.0)
            seen = []
            handle = sched.schedule(5.0, seen.append, "nope")
            handle.cancel()
            await asyncio.sleep(0.05)
            return seen

        assert run(body) == []

    def test_schedule_at_clamps_past_deadlines(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop(), speedup=1000.0)
            fired = asyncio.Event()
            await asyncio.sleep(0.02)  # now ≈ 20 protocol s
            sched.schedule_at(1.0, lambda: fired.set())  # already past
            await asyncio.wait_for(fired.wait(), timeout=1.0)

        run(body)

    def test_every_fires_repeatedly_until_stopped(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop(), speedup=1000.0)
            ticks = []
            periodic = sched.every(10.0, lambda: ticks.append(sched.now))
            await asyncio.sleep(0.08)  # ~80 protocol s -> ~8 periods
            periodic.stop()
            count = len(ticks)
            await asyncio.sleep(0.03)
            return count, len(ticks), periodic.stopped

        count, after, stopped = run(body)
        assert count >= 3
        assert after == count  # nothing fires past stop()
        assert stopped

    def test_every_rejects_nonpositive_period(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop())
            with pytest.raises(ValueError, match="period"):
                sched.every(0.0, lambda: None)

        run(body)


class TestEpoch:
    def test_reset_epoch_rezeroes_protocol_time(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop(), speedup=1000.0)
            await asyncio.sleep(0.03)
            before = sched.now
            sched.reset_epoch()
            return before, sched.now

        before, after = run(body)
        assert before > after
        assert after < 5.0  # freshly re-zeroed

    def test_reset_epoch_refused_once_timers_are_armed(self):
        async def body():
            sched = LiveScheduler(asyncio.get_running_loop())
            sched.schedule(60.0, lambda: None)
            with pytest.raises(RuntimeError, match="epoch"):
                sched.reset_epoch()

        run(body)
