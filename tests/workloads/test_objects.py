"""Replicated-object catalogs and queries."""

import numpy as np
import pytest

from repro.workloads.objects import build_catalog, replica_queries


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestCatalog:
    def test_counts_proportional_to_popularity(self):
        cat = build_catalog(100, 20, _rng(), max_replicas=10)
        counts = cat.replica_counts()
        assert counts[0] == 10
        assert np.all(np.diff(counts) <= 0)  # non-increasing with rank
        assert counts.min() >= 1

    def test_holders_distinct_slots(self):
        cat = build_catalog(50, 10, _rng(), max_replicas=20)
        for h in cat.holders:
            assert len(np.unique(h)) == len(h)
            assert h.min() >= 0 and h.max() < 50

    def test_min_replicas_respected(self):
        cat = build_catalog(100, 5, _rng(), max_replicas=8, min_replicas=3)
        assert cat.replica_counts().min() >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_catalog(10, 0, _rng())
        with pytest.raises(ValueError):
            build_catalog(10, 5, _rng(), max_replicas=20)
        with pytest.raises(ValueError):
            build_catalog(10, 5, _rng(), min_replicas=0)


class TestQueries:
    def test_shapes(self):
        cat = build_catalog(60, 15, _rng())
        qs = replica_queries(cat, 60, 100, _rng())
        assert len(qs) == 100
        for src, holders in qs:
            assert 0 <= src < 60
            assert holders.size >= 1

    def test_popular_objects_dominate(self):
        cat = build_catalog(60, 50, _rng())
        qs = replica_queries(cat, 60, 5000, _rng())
        # popular objects have more replicas: mean holder count per query
        # must exceed the catalog-wide mean
        per_query = np.mean([h.size for _, h in qs])
        assert per_query > cat.replica_counts().mean()


class TestReplicaLookups:
    def test_min_over_holders(self, gnutella):
        holders = np.array([5, 9, 21])
        vals = [gnutella.lookup_latency(0, int(h)) for h in holders]
        assert gnutella.replica_lookup_latency(0, holders) == pytest.approx(min(vals))

    def test_self_holder_free(self, gnutella):
        assert gnutella.replica_lookup_latency(4, [1, 4, 9]) == 0.0

    def test_empty_holders_rejected(self, gnutella):
        with pytest.raises(ValueError):
            gnutella.replica_lookup_latency(0, [])

    def test_more_replicas_never_slower(self, gnutella):
        few = gnutella.replica_lookup_latency(0, [30])
        many = gnutella.replica_lookup_latency(0, [30, 31, 32, 33])
        assert many <= few

    def test_mean_replica_latency_end_to_end(self, gnutella):
        rng = np.random.default_rng(1)
        cat = build_catalog(gnutella.n_slots, 20, rng)
        qs = replica_queries(cat, gnutella.n_slots, 60, rng)
        val = gnutella.mean_replica_lookup_latency(qs)
        flat = gnutella.mean_lookup_latency(
            np.array([[s, int(h[0])] for s, h in qs])
        )
        assert 0 < val <= flat  # replicas can only help

    def test_ttl_failures_excluded(self, gnutella):
        rng = np.random.default_rng(2)
        cat = build_catalog(gnutella.n_slots, 10, rng, max_replicas=2)
        qs = replica_queries(cat, gnutella.n_slots, 40, rng)
        val = gnutella.mean_replica_lookup_latency(qs, ttl=2)
        assert np.isfinite(val) or val == float("inf")
