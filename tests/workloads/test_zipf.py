"""Zipf-skewed lookup workloads."""

import numpy as np
import pytest

from repro.workloads.zipf import zipf_ranks, zipf_target_pairs


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestZipfRanks:
    def test_range(self):
        r = zipf_ranks(50, 1000, _rng())
        assert r.min() >= 0 and r.max() < 50

    def test_skew(self):
        r = zipf_ranks(100, 20_000, _rng())
        top_share = np.mean(r < 10)
        uniform_share = 0.1
        assert top_share > 3 * uniform_share  # heavy head

    def test_exponent_controls_skew(self):
        light = zipf_ranks(100, 20_000, _rng(1), exponent=0.5)
        heavy = zipf_ranks(100, 20_000, _rng(1), exponent=2.0)
        assert np.mean(heavy < 5) > np.mean(light < 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_ranks(0, 10, _rng())
        with pytest.raises(ValueError):
            zipf_ranks(10, 10, _rng(), exponent=0.0)


class TestZipfPairs:
    def test_shape_and_no_self_lookups(self):
        pairs = zipf_target_pairs(40, 2000, _rng())
        assert pairs.shape == (2000, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_destinations_skewed(self):
        pairs = zipf_target_pairs(100, 20_000, _rng())
        _, counts = np.unique(pairs[:, 1], return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 5 * counts[-1]

    def test_popularity_decoupled_from_slot_index(self):
        """The most popular destination is not systematically slot 0."""
        tops = set()
        for seed in range(8):
            pairs = zipf_target_pairs(50, 2000, _rng(seed))
            vals, counts = np.unique(pairs[:, 1], return_counts=True)
            tops.add(int(vals[np.argmax(counts)]))
        assert len(tops) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_target_pairs(1, 10, _rng())
