"""Bimodal heterogeneity: assignment, host/slot projection, weights."""

import numpy as np
import pytest

from repro.workloads.heterogeneity import (
    bimodal_processing_delay,
    capacity_weights_from_delay,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestAssignment:
    def test_fraction(self):
        het = bimodal_processing_delay(200, _rng(), fast_fraction=0.5)
        assert int(het.is_fast.sum()) == 100

    def test_delays(self):
        het = bimodal_processing_delay(100, _rng(), fast_ms=1.0, slow_ms=100.0)
        assert np.all(het.delay_ms[het.is_fast] == 1.0)
        assert np.all(het.delay_ms[~het.is_fast] == 100.0)

    def test_all_fast(self):
        het = bimodal_processing_delay(50, _rng(), fast_fraction=1.0)
        assert het.is_fast.all()
        assert het.slow_hosts.size == 0

    def test_all_slow(self):
        het = bimodal_processing_delay(50, _rng(), fast_fraction=0.0)
        assert not het.is_fast.any()

    def test_validation(self):
        with pytest.raises(ValueError):
            bimodal_processing_delay(10, _rng(), fast_fraction=2.0)
        with pytest.raises(ValueError):
            bimodal_processing_delay(10, _rng(), fast_ms=0.0)

    def test_deterministic(self):
        a = bimodal_processing_delay(100, _rng(3))
        b = bimodal_processing_delay(100, _rng(3))
        assert np.array_equal(a.is_fast, b.is_fast)


class TestSlotProjection:
    def test_slot_delays_follow_embedding(self):
        het = bimodal_processing_delay(10, _rng())
        emb = np.array([3, 1, 7])
        assert np.array_equal(het.slot_delays(emb), het.delay_ms[[3, 1, 7]])

    def test_fast_slots_track_swaps(self):
        het = bimodal_processing_delay(10, _rng(), fast_fraction=0.5)
        emb = np.arange(10)
        before = set(het.fast_slots(emb).tolist())
        # swap a fast host with a slow host: the slots trade categories
        fast_h = int(het.fast_hosts[0])
        slow_h = int(het.slow_hosts[0])
        emb[fast_h], emb[slow_h] = emb[slow_h], emb[fast_h]
        after = set(het.fast_slots(emb).tolist())
        assert before != after
        assert (before - after) == {fast_h}
        assert (after - before) == {slow_h}

    def test_fast_and_slow_slots_partition(self):
        het = bimodal_processing_delay(20, _rng())
        emb = _rng(1).permutation(20)
        fast = set(het.fast_slots(emb).tolist())
        slow = set(het.slow_slots(emb).tolist())
        assert fast | slow == set(range(20))
        assert not fast & slow


class TestCapacityWeights:
    def test_fast_hosts_weighted(self):
        het = bimodal_processing_delay(10, _rng(), fast_fraction=0.5)
        emb = np.arange(10)
        w = capacity_weights_from_delay(het, emb, fast_weight=4.0)
        assert np.all(w[het.fast_slots(emb)] == 4.0)
        assert np.all(w[het.slow_slots(emb)] == 1.0)

    def test_weight_validated(self):
        het = bimodal_processing_delay(10, _rng())
        with pytest.raises(ValueError):
            capacity_weights_from_delay(het, np.arange(10), fast_weight=0.0)
