"""Churn process: replacement semantics, rates, windows, callbacks."""

import numpy as np
import pytest

from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.overlay.base import Overlay
from repro.workloads.churn import ChurnConfig, ChurnProcess


def _world(small_oracle, n_overlay=20, n_spare=10):
    ov = Overlay(small_oracle, np.arange(n_overlay))
    for i in range(n_overlay):
        ov.add_edge(i, (i + 1) % n_overlay)
    spare = list(range(n_overlay, n_overlay + n_spare))
    return ov, spare


class TestConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(rate_per_node=-1.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(rate_per_node=0.1, start=10.0, stop=5.0)


class TestReplacement:
    def test_replace_swaps_host_with_spare(self, small_oracle):
        ov, spare = _world(small_oracle)
        proc = ChurnProcess(ov, ChurnConfig(0.0), Simulator(), np.random.default_rng(0), spare)
        hosts_before = set(ov.embedding.tolist())
        pool_before = set(proc.spare)
        slot = proc.replace_random_slot()
        assert ov.host_at(slot) in pool_before
        # departed host returned to the pool
        assert set(proc.spare) | set(ov.embedding.tolist()) == hosts_before | pool_before

    def test_embedding_stays_injective(self, small_oracle):
        ov, spare = _world(small_oracle)
        proc = ChurnProcess(ov, ChurnConfig(0.0), Simulator(), np.random.default_rng(0), spare)
        for _ in range(50):
            proc.replace_random_slot()
        assert len(set(ov.embedding.tolist())) == ov.n_slots

    def test_topology_untouched(self, small_oracle):
        ov, spare = _world(small_oracle)
        edges = set(ov.iter_edges())
        proc = ChurnProcess(ov, ChurnConfig(0.0), Simulator(), np.random.default_rng(0), spare)
        for _ in range(20):
            proc.replace_random_slot()
        assert set(ov.iter_edges()) == edges

    def test_callback_fires(self, small_oracle):
        ov, spare = _world(small_oracle)
        seen = []
        proc = ChurnProcess(
            ov, ChurnConfig(0.0), Simulator(), np.random.default_rng(0),
            spare, on_replace=seen.append
        )
        slot = proc.replace_random_slot()
        assert seen == [slot]

    def test_embedded_spare_rejected(self, small_oracle):
        ov, _ = _world(small_oracle)
        with pytest.raises(ValueError):
            ChurnProcess(ov, ChurnConfig(0.0), Simulator(), np.random.default_rng(0), [0])


class TestProcess:
    def test_poisson_rate_approximately_honoured(self, small_oracle):
        ov, spare = _world(small_oracle)
        sim = Simulator()
        rate = 0.001  # per node per second; aggregate = 0.02/s
        proc = ChurnProcess(ov, ChurnConfig(rate), sim, RngRegistry(7).stream("churn"), spare)
        proc.start()
        sim.run_until(10_000.0)
        expected = rate * ov.n_slots * 10_000.0
        assert 0.5 * expected < proc.events < 1.5 * expected

    def test_window_respected(self, small_oracle):
        ov, spare = _world(small_oracle)
        sim = Simulator()
        cfg = ChurnConfig(0.01, start=100.0, stop=200.0)
        proc = ChurnProcess(ov, cfg, sim, RngRegistry(7).stream("churn"), spare)
        proc.start()
        sim.run_until(99.0)
        assert proc.events == 0
        sim.run_until(5000.0)
        assert proc.events > 0
        count_at_stop = proc.events
        sim.run_until(20_000.0)
        assert proc.events == count_at_stop

    def test_zero_rate_never_fires(self, small_oracle):
        ov, spare = _world(small_oracle)
        sim = Simulator()
        proc = ChurnProcess(ov, ChurnConfig(0.0), sim, RngRegistry(7).stream("churn"), spare)
        proc.start()
        sim.run_until(10_000.0)
        assert proc.events == 0

    def test_double_start_rejected(self, small_oracle):
        ov, spare = _world(small_oracle)
        proc = ChurnProcess(ov, ChurnConfig(0.0), Simulator(), np.random.default_rng(0), spare)
        proc.start()
        with pytest.raises(RuntimeError):
            proc.start()
