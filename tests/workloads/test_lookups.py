"""Lookup workload generators: ranges, bias, collision freedom."""

import numpy as np
import pytest

from repro.workloads.lookups import biased_target_pairs, uniform_keys, uniform_pairs


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestUniformPairs:
    def test_shape_and_range(self):
        pairs = uniform_pairs(50, 200, _rng())
        assert pairs.shape == (200, 2)
        assert pairs.min() >= 0 and pairs.max() < 50

    def test_no_self_lookups(self):
        pairs = uniform_pairs(10, 2000, _rng())
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_destination_coverage(self):
        pairs = uniform_pairs(10, 2000, _rng())
        assert len(np.unique(pairs[:, 1])) == 10

    def test_needs_two_slots(self):
        with pytest.raises(ValueError):
            uniform_pairs(1, 5, _rng())


class TestUniformKeys:
    def test_shape_and_range(self):
        q = uniform_keys(20, 1 << 16, 300, _rng())
        assert q.shape == (300, 2)
        assert q[:, 0].min() >= 0 and q[:, 0].max() < 20
        assert q[:, 1].min() >= 0 and q[:, 1].max() < (1 << 16)

    def test_needs_one_slot(self):
        with pytest.raises(ValueError):
            uniform_keys(0, 16, 5, _rng())


class TestBiasedPairs:
    def _slots(self, n=40):
        fast = np.arange(0, n, 2)
        slow = np.arange(1, n, 2)
        return fast, slow

    def test_extremes(self):
        fast, slow = self._slots()
        all_fast = biased_target_pairs(fast, slow, 1.0, 500, _rng())
        assert np.all(np.isin(all_fast[:, 1], fast))
        all_slow = biased_target_pairs(fast, slow, 0.0, 500, _rng())
        assert np.all(np.isin(all_slow[:, 1], slow))

    def test_fraction_respected(self):
        fast, slow = self._slots()
        pairs = biased_target_pairs(fast, slow, 0.3, 5000, _rng())
        frac = np.mean(np.isin(pairs[:, 1], fast))
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_no_self_lookups(self):
        fast, slow = self._slots(6)
        pairs = biased_target_pairs(fast, slow, 0.5, 3000, _rng())
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_fraction_validated(self):
        fast, slow = self._slots()
        with pytest.raises(ValueError):
            biased_target_pairs(fast, slow, 1.5, 10, _rng())

    def test_empty_population_validated(self):
        fast, slow = self._slots()
        with pytest.raises(ValueError):
            biased_target_pairs(np.array([], dtype=int), slow, 0.5, 10, _rng())
        with pytest.raises(ValueError):
            biased_target_pairs(fast, np.array([], dtype=int), 0.5, 10, _rng())

    def test_all_fast_with_no_slow_ok(self):
        fast, slow = self._slots()
        pairs = biased_target_pairs(fast, np.array([], dtype=int), 1.0, 100, _rng())
        assert np.all(np.isin(pairs[:, 1], fast))
