"""Tests for the repo tooling (tools/)."""
