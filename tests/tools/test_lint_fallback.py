"""tools/lint.py — the stdlib fallback linter behind ``make lint``."""

import ast

from tools.lint import LINE_LENGTH, lint_file, unused_imports, used_names


def _lint(tmp_path, text, *, name="mod.py", init_exempt=False):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return lint_file(path, init_exempt=init_exempt)


class TestLintFile:
    def test_clean_file(self, tmp_path):
        assert _lint(tmp_path, "import os\n\nprint(os.sep)\n") == []

    def test_e999_syntax_error_short_circuits(self, tmp_path):
        problems = _lint(tmp_path, "def broken(:\n")
        assert len(problems) == 1
        assert "E999" in problems[0]

    def test_f401_unused_import(self, tmp_path):
        problems = _lint(tmp_path, "import os\n")
        assert len(problems) == 1
        assert "F401" in problems[0] and "'os'" in problems[0]

    def test_f401_respects_alias(self, tmp_path):
        assert any("F401" in p for p in _lint(tmp_path, "import os as o\n"))
        assert _lint(tmp_path, "import os as o\nprint(o.sep)\n") == []

    def test_f401_dunder_all_counts_as_use(self, tmp_path):
        text = "from os import sep\n\n__all__ = [\"sep\"]\n"
        assert _lint(tmp_path, text) == []

    def test_f401_future_and_star_imports_exempt(self, tmp_path):
        text = "from __future__ import annotations\nfrom os import *\n"
        assert all("F401" not in p for p in _lint(tmp_path, text))

    def test_init_exemption_silences_f401_only(self, tmp_path):
        text = "import os\nx = 1 \n"
        problems = _lint(tmp_path, text, name="__init__.py", init_exempt=True)
        assert all("F401" not in p for p in problems)
        assert any("W291" in p for p in problems)

    def test_w291_trailing_whitespace(self, tmp_path):
        problems = _lint(tmp_path, "x = 1 \n")
        assert len(problems) == 1 and "W291" in problems[0]

    def test_w293_whitespace_on_blank_line(self, tmp_path):
        problems = _lint(tmp_path, "x = 1\n \nprint(x)\n")
        assert len(problems) == 1 and "W293" in problems[0]

    def test_w292_missing_final_newline(self, tmp_path):
        problems = _lint(tmp_path, "x = 1")
        assert len(problems) == 1 and "W292" in problems[0]

    def test_e501_long_line(self, tmp_path):
        problems = _lint(tmp_path, "x = " + "1" * LINE_LENGTH + "\n")
        assert len(problems) == 1 and "E501" in problems[0]

    def test_w191_tab_indentation(self, tmp_path):
        problems = _lint(tmp_path, "if True:\n\tpass\n")
        assert len(problems) == 1 and "W191" in problems[0]

    def test_empty_file_is_clean(self, tmp_path):
        assert _lint(tmp_path, "") == []


class TestHelpers:
    def test_used_names_includes_annotations_and_all(self):
        tree = ast.parse(
            "def f(x: Seq) -> Out:\n    return g(x)\n__all__ = ['f', 'h']\n"
        )
        used = used_names(tree)
        assert {"Seq", "Out", "g", "f", "h"} <= used

    def test_unused_imports_reports_line_and_display_name(self):
        tree = ast.parse("import os.path\nimport sys\nprint(sys.path)\n")
        assert unused_imports(tree) == [(1, "os.path")]
