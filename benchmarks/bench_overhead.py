"""Section 4.3 overhead analysis: messages per adjustment step and the
probe-frequency decay of the Markov-chain timer.

Paper claims: one adjustment step costs (nhop + 2c) messages for PROP-G
versus (nhop + 2m) for PROP-O — "the overhead of PROP-O is intuitively
better than PROP-G especially when c is much larger than nhop and m" —
and the per-node probe frequency starts at the worst case
f_p = 1/INIT_TIMER, then decays geometrically once the topology
stabilizes.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig
from repro.harness.reporting import format_series, format_table
from repro.harness.sweep import run_sweep
from repro.metrics.overhead import (
    COORDINATION_SLACK,
    prop_g_step_messages,
    prop_o_step_messages,
    worst_case_probe_frequency,
)


def test_overhead_messages_per_step(benchmark, emit, workers):
    configs = {
        "PROP-G": paper_config(
            overlay_kind="gnutella", prop=PROPConfig(policy="G"), duration=1800.0
        ),
        "PROP-O (m=2)": paper_config(
            overlay_kind="gnutella", prop=PROPConfig(policy="O", m=2), duration=1800.0
        ),
        "PROP-O (m=4)": paper_config(
            overlay_kind="gnutella", prop=PROPConfig(policy="O", m=4), duration=1800.0
        ),
    }
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = []
    measured = {}
    for label, r in results.items():
        c = r.final_counters
        per_step = (c.walk_messages + c.collect_messages) / c.probes
        measured[label] = per_step
        rows.append([label, per_step, c.probes, c.exchanges, c.total_messages])

    mean_degree = 6.0  # ~ the generated Gnutella mean degree
    model_rows = [
        ["PROP-G (model nhop+2c)", prop_g_step_messages(2, mean_degree)],
        ["PROP-O m=2 (model nhop+2m)", prop_o_step_messages(2, 2)],
        ["PROP-O m=4 (model nhop+2m)", prop_o_step_messages(2, 4)],
    ]
    emit(
        "Overhead (Section 4.3)  messages per adjustment step\n\n"
        + format_table(["protocol", "msgs/step", "probes", "exchanges", "total msgs"], rows)
        + "\n\nClosed-form model (c = mean degree ~ 6):\n\n"
        + format_table(["model", "msgs/step"], model_rows)
    )

    # PROP-O is cheaper per step than PROP-G, and ordering follows m.
    assert measured["PROP-O (m=2)"] < measured["PROP-G"]
    assert measured["PROP-O (m=2)"] < measured["PROP-O (m=4)"]


def test_overhead_message_plane_matches_model(benchmark, emit, workers):
    """The message-level engine's per-cycle counts obey Section 4.3.

    At loss 0 with the bridge transport (``latency_scale=0``) the
    message plane must reproduce the inline engine's protocol counters
    except for exactly ``COORDINATION_SLACK`` extra collect messages per
    probe (the walk terminal's VAR_REPLY), and the measured messages per
    adjustment step must land on the closed forms nhop+2c / nhop+2m plus
    that documented slack.
    """
    world = dict(preset="ts-small", n_overlay=200, duration=1800.0,
                 sample_interval=360.0)
    pairs = {
        "PROP-G": PROPConfig(policy="G"),
        "PROP-O (m=2)": PROPConfig(policy="O", m=2),
    }
    configs = {}
    for label, prop in pairs.items():
        configs[f"{label} inline"] = ExperimentConfig(prop=prop, **world)
        configs[f"{label} message"] = ExperimentConfig(
            prop=prop, transport="sim", latency_scale=0.0, **world
        )
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = []
    for label in pairs:
        inl = results[f"{label} inline"].final_counters
        msg = results[f"{label} message"].final_counters
        # Identical trajectory, plus the documented slack — exactly.
        assert msg.probes == inl.probes
        assert msg.exchanges == inl.exchanges
        assert msg.walk_messages == inl.walk_messages
        assert msg.collect_messages == (
            inl.collect_messages + COORDINATION_SLACK * msg.probes
        )
        per_step = (msg.walk_messages + msg.collect_messages) / msg.probes
        rows.append([label, per_step, msg.probes, msg.exchanges])

    # Against the closed forms: PROP-O's collect volume is exactly 2m per
    # evaluated cycle; PROP-G's is 2c averaged over the evaluated pairs.
    msg_o = results["PROP-O (m=2) message"].final_counters
    n_eval_o = len(msg_o.var_history)
    assert msg_o.collect_messages - COORDINATION_SLACK * msg_o.probes == (
        int(2 * 2 * n_eval_o)
    )
    mean_degree = 6.0  # ~ the generated Gnutella mean degree
    msg_g = results["PROP-G message"].final_counters
    n_eval_g = len(msg_g.var_history)
    collect_g = msg_g.collect_messages - COORDINATION_SLACK * msg_g.probes
    assert abs(collect_g / n_eval_g - 2 * mean_degree) < 0.35 * (2 * mean_degree)

    model_rows = [
        ["PROP-G (nhop+2c+slack)",
         prop_g_step_messages(2, mean_degree) + COORDINATION_SLACK],
        ["PROP-O m=2 (nhop+2m+slack)",
         prop_o_step_messages(2, 2) + COORDINATION_SLACK],
    ]
    emit(
        "Overhead (Section 4.3)  message plane vs closed forms\n\n"
        + format_table(["engine", "msgs/step", "probes", "exchanges"], rows)
        + "\n\nClosed-form model plus documented coordination slack:\n\n"
        + format_table(["model", "msgs/step"], model_rows)
    )


def test_overhead_probe_frequency_decay(benchmark, emit):
    cfg = paper_config(
        overlay_kind="gnutella",
        prop=PROPConfig(policy="G"),
        duration=7200.0,
        sample_interval=720.0,
    )
    result = run_once(
        benchmark,
        lambda: __import__("repro.harness.experiment", fromlist=["run_experiment"]).run_experiment(
            cfg, measure_lookups=False
        ),
    )

    per_node_rate = result.probe_rate() / cfg.n_overlay
    worst = worst_case_probe_frequency(60.0)
    emit(
        format_series(
            "Overhead  per-node probe frequency (1/s) vs time "
            f"(worst case f_p = 1/INIT_TIMER = {worst:.4f})",
            result.times[1:],
            {"measured f_p": per_node_rate},
        )
    )

    # warm-up probes near the worst case; converged tail far below it
    assert per_node_rate[0] <= worst * 1.1
    assert per_node_rate[-1] < 0.5 * per_node_rate[0]
