"""Shared configuration for the figure-regeneration benchmarks.

The paper's default world (Section 5.1): GT-ITM ``ts-large``, 1000
overlay nodes, metrics sampled as the protocol runs.  ``PAPER`` mirrors
those defaults; the heterogeneity constants live in ``FIG7``.

Every benchmark runs its deployment exactly once (pedantic mode): the
meaningful output is the regenerated series, the wall-clock time is
reported for scale context only.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentConfig

__all__ = [
    "PAPER",
    "FIG7",
    "add_workers_option",
    "run_once",
    "workers_from_config",
]

# Section 5.1 defaults: ts-large, n = 1000, probe timer 60 s.  One
# simulated hour with 6-minute samples covers warm-up (10 probes) and
# the converged tail.
PAPER = dict(
    preset="ts-large",
    n_overlay=1000,
    duration=3600.0,
    sample_interval=360.0,
    lookups_per_sample=1000,
)

# Section 5.3 heterogeneous environment: bimodal processing delay
# (fast 1 ms / slow 100 ms, 50 % fast — the Dabek-style setting), fast
# hosts attract more connections, floods are TTL-7 scoped with requery.
FIG7 = dict(
    preset="ts-large",
    n_overlay=1000,
    duration=1800.0,
    sample_interval=900.0,
    lookups_per_sample=600,
    heterogeneous=True,
    fast_fraction=0.5,
    fast_ms=1.0,
    slow_ms=100.0,
    fast_degree_weight=8.0,
    flood_ttl=7,
    overlay_options={"min_degree": 3, "mean_extra_degree": 3.0},
)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def add_workers_option(parser) -> None:
    """Register the suite-wide ``--workers`` flag (called from conftest).

    Sweep- and replication-driven benches fan their independent worlds
    out over this many processes via ``repro.harness.parallel``;
    results are identical for every value (determinism guarantee), only
    wall-clock changes.
    """
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep/replication benches "
             "(default: 1 = serial; 0 = one per core)",
    )


def workers_from_config(config) -> int:
    """The ``--workers`` value, defaulting to serial when unregistered."""
    try:
        return int(config.getoption("--workers"))
    except (ValueError, KeyError):
        return 1


def paper_config(**overrides) -> ExperimentConfig:
    merged = {**PAPER, **overrides}
    return ExperimentConfig(**merged)


def fig7_config(**overrides) -> ExperimentConfig:
    merged = {**FIG7, **overrides}
    return ExperimentConfig(**merged)
