"""Shared configuration for the figure-regeneration benchmarks.

The paper's default world (Section 5.1): GT-ITM ``ts-large``, 1000
overlay nodes, metrics sampled as the protocol runs.  ``PAPER`` mirrors
those defaults; the heterogeneity constants live in ``FIG7``.

Every benchmark runs its deployment exactly once (pedantic mode): the
meaningful output is the regenerated series, the wall-clock time is
reported for scale context only.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.harness.experiment import ExperimentConfig

__all__ = [
    "PAPER",
    "FIG7",
    "HISTORY_PATH",
    "add_workers_option",
    "kernel_profile_enabled",
    "record_history",
    "run_once",
    "workers_from_config",
]

#: Append-only benchmark trajectory (gated by ``make bench-check``).
#: Override with the ``REPRO_BENCH_HISTORY`` env var (a path, or ``0``
#: to disable recording entirely).
HISTORY_PATH = Path(__file__).resolve().parent / "history.jsonl"

# Section 5.1 defaults: ts-large, n = 1000, probe timer 60 s.  One
# simulated hour with 6-minute samples covers warm-up (10 probes) and
# the converged tail.
PAPER = dict(
    preset="ts-large",
    n_overlay=1000,
    duration=3600.0,
    sample_interval=360.0,
    lookups_per_sample=1000,
)

# Section 5.3 heterogeneous environment: bimodal processing delay
# (fast 1 ms / slow 100 ms, 50 % fast — the Dabek-style setting), fast
# hosts attract more connections, floods are TTL-7 scoped with requery.
FIG7 = dict(
    preset="ts-large",
    n_overlay=1000,
    duration=1800.0,
    sample_interval=900.0,
    lookups_per_sample=600,
    heterogeneous=True,
    fast_fraction=0.5,
    fast_ms=1.0,
    slow_ms=100.0,
    fast_degree_weight=8.0,
    flood_ttl=7,
    overlay_options={"min_degree": 3, "mean_extra_degree": 3.0},
)


def kernel_profile_enabled() -> bool:
    """Opt into per-category kernel profiling via ``REPRO_KERNEL_PROFILE``.

    Off by default so the recorded wall-seconds stay comparable with the
    unprofiled history (the disabled profiler costs one attribute
    check); set ``REPRO_KERNEL_PROFILE=1`` to also record per-category
    ``kernel.*`` seconds, letting ``bench-check`` localize a regression
    to a category instead of a single wall-seconds number.
    """
    return os.environ.get("REPRO_KERNEL_PROFILE", "") not in ("", "0", "off")


def _history_path() -> Path | None:
    """Where history records go; ``None`` when recording is disabled."""
    env = os.environ.get("REPRO_BENCH_HISTORY")
    if env is None:
        return HISTORY_PATH
    if env in ("", "0", "off"):
        return None
    return Path(env)


def record_history(bench: str, metrics: dict, *, config=None) -> None:
    """Append one schema-versioned record to the benchmark history.

    ``config`` (an :class:`ExperimentConfig`, when the bench has a
    single defining one) supplies the fingerprint and seed; the
    timestamp is stamped here, in the bench harness — wall clocks never
    run inside the sim.
    """
    path = _history_path()
    if path is None:
        return
    from repro.obs.bench_history import append_record, current_git_rev, history_record
    from repro.obs.report import config_fingerprint

    append_record(
        path,
        history_record(
            bench,
            fingerprint=config_fingerprint(config) if config is not None else "unknown",
            seed=int(getattr(config, "seed", 0)) if config is not None else 0,
            metrics=metrics,
            git_rev=current_git_rev(Path(__file__).resolve().parent),
            timestamp=time.time(),
        ),
    )


def run_once(benchmark, fn, *, config=None):
    """Execute ``fn`` exactly once under the benchmark timer.

    Every run also lands one wall-seconds record in the benchmark
    history (:data:`HISTORY_PATH`) keyed by the pytest-benchmark node
    name, so ``make bench-check`` can gate the next run against the
    trailing median.  Pass ``config`` when the bench has one defining
    :class:`ExperimentConfig` so the record carries its fingerprint.
    """
    timing: dict[str, float] = {}

    def timed():
        started = time.perf_counter()
        out = fn()
        timing["seconds"] = time.perf_counter() - started
        return out

    result = benchmark.pedantic(timed, rounds=1, iterations=1)
    seconds = timing.get("seconds")
    if seconds is not None:
        metrics = {"wall_seconds": round(seconds, 4)}
        # benches returning an ExperimentResult from a kernel-profiled
        # config also record per-category seconds, so bench-check can
        # localize a regression to a category
        kernel = getattr(result, "kernel_profile", None)
        if kernel:
            for category, ns in sorted(kernel.get("categories", {}).items()):
                metrics[f"kernel.{category}"] = round(ns / 1e9, 4)
            metrics["kernel.untracked"] = round(
                kernel.get("untracked_ns", 0) / 1e9, 4
            )
        record_history(
            getattr(benchmark, "name", "unnamed"),
            metrics,
            config=config,
        )
    return result


def add_workers_option(parser) -> None:
    """Register the suite-wide ``--workers`` flag (called from conftest).

    Sweep- and replication-driven benches fan their independent worlds
    out over this many processes via ``repro.harness.parallel``;
    results are identical for every value (determinism guarantee), only
    wall-clock changes.
    """
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep/replication benches "
             "(default: 1 = serial; 0 = one per core)",
    )


def workers_from_config(config) -> int:
    """The ``--workers`` value, defaulting to serial when unregistered."""
    try:
        return int(config.getoption("--workers"))
    except (ValueError, KeyError):
        return 1


def paper_config(**overrides) -> ExperimentConfig:
    merged = {"kernel_profile": kernel_profile_enabled(), **PAPER, **overrides}
    return ExperimentConfig(**merged)


def fig7_config(**overrides) -> ExperimentConfig:
    merged = {"kernel_profile": kernel_profile_enabled(), **FIG7, **overrides}
    return ExperimentConfig(**merged)
