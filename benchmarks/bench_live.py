"""Live-plane throughput benchmark (``make bench-live``).

Drives a 50-peer loopback swarm — real UDP datagrams, real codec, real
event-loop timers — for a fixed protocol duration and records the two
throughput numbers the deployment plane is judged by:

* **msgs_per_s** — datagrams through the kernel per wall second, i.e.
  how much protocol traffic one process sustains;
* **exchanges_per_s** — committed PROP exchanges per wall second, the
  useful-work rate behind that traffic.

Both land in ``benchmarks/history.jsonl`` (one record per metric, keyed
``live_swarm/<metric>``) so ``make bench-check`` gates regressions in
the live stack — codec, transport, scheduler — exactly as it gates the
simulator benches.  Wall-clock measurement is legitimate here: the
deployment plane *runs on* the wall clock; its wall-seconds figure is
the workload, not noise around it.

Exits 0 without recording when loopback UDP is unavailable (CI
sandboxes), mirroring the live test suite's skip.  Not a
pytest-benchmark module on purpose: one swarm run is the measurement,
repeat-and-best-of would just burn wall time on a timer-paced workload.
"""

from __future__ import annotations

import asyncio
import json
import sys

from common import record_history  # benchmarks/ is the cwd for bench scripts

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig
from repro.live.cli import swarm_metrics
from repro.live.swarm import Swarm
from repro.live.transport import udp_loopback_available

#: Fixed bench shape: big enough for sustained traffic, small enough to
#: finish in ~2 wall seconds.  480 protocol s covers eight warmup probe
#: cycles, where PROP's message rate peaks.
CONFIG = ExperimentConfig(
    seed=0,
    preset="ts-small",
    n_overlay=50,
    prop=PROPConfig(policy="G"),
    transport="udp",
    duration=480.0,
    sample_interval=480.0,
    live_speedup=240.0,
)


def main() -> int:
    if not udp_loopback_available():
        print("bench-live: loopback UDP unavailable; skipping", file=sys.stderr)
        return 0
    report = asyncio.run(Swarm(CONFIG).run())
    metrics = swarm_metrics(report)
    print(report.summary(), file=sys.stderr)
    print(json.dumps({"bench": "live_swarm", **metrics}, sort_keys=True))
    record_history("live_swarm", metrics, config=CONFIG)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
