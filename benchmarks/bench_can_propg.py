"""Protocol independence (Theorem 2's payoff): PROP-G on CAN and Pastry.

"Therefore, as an auxiliary method, it is suitable for different
topologies: ring, hypercube, tree, and so on."  The Chord/Gnutella
figures cover ring and random graphs; this bench deploys the *same*
engine, untouched, on the CAN torus and the Pastry prefix graph.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_table
from repro.harness.sweep import run_sweep


def test_prop_g_on_can_and_pastry(benchmark, emit, workers):
    base = dict(duration=2400.0, lookups_per_sample=300)
    configs = {
        "CAN d=2": paper_config(overlay_kind="can", n_overlay=512, **base),
        "CAN d=2 +PROP-G": paper_config(
            overlay_kind="can", n_overlay=512, prop=PROPConfig(policy="G"), **base
        ),
        "Pastry": paper_config(overlay_kind="pastry", n_overlay=512, **base),
        "Pastry +PROP-G": paper_config(
            overlay_kind="pastry", n_overlay=512, prop=PROPConfig(policy="G"), **base
        ),
        "Kademlia": paper_config(overlay_kind="kademlia", n_overlay=512, **base),
        "Kademlia +PROP-G": paper_config(
            overlay_kind="kademlia", n_overlay=512, prop=PROPConfig(policy="G"), **base
        ),
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    rows = [
        [label, r.initial_stretch, r.final_stretch, r.link_stretch[0], r.link_stretch[-1]]
        for label, r in results.items()
    ]
    emit(
        "Protocol independence  PROP-G on CAN and Pastry (n = 512)\n\n"
        + format_table(
            ["deployment", "initial stretch", "final stretch",
             "link stretch t0", "link stretch t1"],
            rows,
        )
    )

    assert results["CAN d=2 +PROP-G"].final_stretch < results["CAN d=2"].final_stretch
    assert results["Pastry +PROP-G"].final_stretch < results["Pastry"].final_stretch
    assert results["Kademlia +PROP-G"].final_stretch < results["Kademlia"].final_stretch
    # and the optimized overlays' logical structure is untouched: the
    # engine only swapped embeddings (checked structurally in the tests;
    # here the deployments simply complete with exchanges > 0)
    assert results["CAN d=2 +PROP-G"].final_counters.exchanges > 0
    assert results["Pastry +PROP-G"].final_counters.exchanges > 0
