"""Figure 5(c): PROP-G in Gnutella — average lookup latency vs time on
the two physical topologies.

Paper series: ts-large vs ts-small (~6000 hosts each; big sparse
backbone vs small backbone with dense edge networks).  Expected shape:
ts-large improves markedly more — "two far nodes can execute the
exchange operation with a high probability, and this kind of exchange
will greatly improve the performance".
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_series, format_table
from repro.harness.sweep import run_sweep


def test_fig5c_gnutella_vary_topology(benchmark, emit, workers):
    configs = {
        preset: paper_config(
            overlay_kind="gnutella",
            preset=preset,
            prop=PROPConfig(policy="G", nhops=2),
        )
        for preset in ("ts-large", "ts-small")
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    times = next(iter(results.values())).times
    rows = [
        [
            label,
            r.initial_lookup_latency,
            r.final_lookup_latency,
            r.initial_lookup_latency - r.final_lookup_latency,
            r.link_stretch[-1] / r.link_stretch[0],
        ]
        for label, r in results.items()
    ]
    emit(
        format_series(
            "Fig 5(c)  PROP-G / Gnutella: avg lookup latency (ms) vs time, two topologies",
            times,
            {label: r.lookup_latency for label, r in results.items()},
        )
        + "\n\n"
        + format_table(
            ["topology", "initial(ms)", "final(ms)", "abs drop(ms)", "stretch ratio"],
            rows,
        )
    )

    large, small = results["ts-large"], results["ts-small"]
    drop_large = large.initial_lookup_latency - large.final_lookup_latency
    drop_small = small.initial_lookup_latency - small.final_lookup_latency
    assert drop_large > drop_small
    assert (large.link_stretch[-1] / large.link_stretch[0]
            < small.link_stretch[-1] / small.link_stretch[0])
