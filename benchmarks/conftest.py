"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's figures/tables: it runs
the experiment once under ``benchmark.pedantic`` (wall-clock measured,
no repetition — a full simulated deployment is the unit of work) and
emits the series both to stdout and to ``benchmarks/output/<name>.txt``
so runs are diffable.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.common import add_workers_option, workers_from_config

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_addoption(parser):
    add_workers_option(parser)


@pytest.fixture(scope="session")
def workers(request) -> int:
    """Process count for sweep/replication benches (``--workers``)."""
    return workers_from_config(request.config)


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def emit(output_dir, request, capsys):
    """Writer that prints a report and records it under the test's name."""

    def _emit(text: str) -> None:
        name = request.node.name.replace("/", "_")
        (output_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}")

    return _emit
