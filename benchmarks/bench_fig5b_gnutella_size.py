"""Figure 5(b): PROP-G in Gnutella — average lookup latency vs time,
varying the system size.

Paper series: nhops = 2 with n ∈ {300, 500, 1000, 5000} (the top size is
"almost all physical nodes" of the ~6000-stub ts-large world).  Expected
shape: improvement at every size; relative effectiveness shrinks mildly
as n grows but persists at n = 5000.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_series, format_table
from repro.harness.sweep import run_sweep

SIZES = [300, 500, 1000, 5000]


def test_fig5b_gnutella_vary_size(benchmark, emit, workers):
    configs = {
        f"n={n}, nhops=2": paper_config(
            overlay_kind="gnutella",
            n_overlay=n,
            prop=PROPConfig(policy="G", nhops=2),
            lookups_per_sample=min(1000, 2 * n),
        )
        for n in SIZES
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    times = next(iter(results.values())).times
    emit(
        format_series(
            "Fig 5(b)  PROP-G / Gnutella: avg lookup latency (ms) vs time, varying size",
            times,
            {label: r.lookup_latency for label, r in results.items()},
        )
        + "\n\n"
        + format_table(
            ["size", "initial(ms)", "final(ms)", "final/initial"],
            [
                [label, r.initial_lookup_latency, r.final_lookup_latency, r.improvement_ratio()]
                for label, r in results.items()
            ],
        )
    )

    for r in results.values():
        assert r.final_lookup_latency < r.initial_lookup_latency
    # effectiveness persists at the largest size
    assert results["n=5000, nhops=2"].improvement_ratio() < 0.9
