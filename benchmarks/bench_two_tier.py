"""Two-tier (ultrapeer) Gnutella under PROP (extension).

The deployed Gnutella 0.6 architecture: capable nodes form the flooding
mesh, leaves never forward.  Checks that the paper's story carries over
to the real topology: both policies cut lookup latency, PROP-O preserves
the role/degree structure exactly, and PROP-G — which may move a slow
host into an ultrapeer position — underperforms PROP-O once processing
delays matter.
"""

import numpy as np

from benchmarks.common import run_once
from repro.core.config import PROPConfig
from repro.core.protocol import PROPEngine
from repro.harness.reporting import format_table
from repro.netsim.engine import Simulator
from repro.netsim.rng import RngRegistry
from repro.overlay.ultrapeer import UltrapeerGnutellaOverlay
from repro.topology.latency import LatencyOracle
from repro.topology.presets import build_preset
from repro.workloads.heterogeneity import bimodal_processing_delay
from repro.workloads.lookups import uniform_pairs

N = 600
DURATION = 2400.0


def _world(seed=13):
    rngs = RngRegistry(seed)
    net = build_preset("ts-large", rngs.stream("topology"))
    hosts = rngs.stream("members").choice(net.stub_hosts, size=N, replace=False)
    oracle = LatencyOracle(net, hosts)
    het = bimodal_processing_delay(N, rngs.stream("het"), slow_ms=100.0)
    # capable (fast) hosts get elected ultrapeer
    capacity = np.where(het.is_fast, 10.0, 1.0)
    overlay = UltrapeerGnutellaOverlay.build_two_tier(
        oracle, rngs.stream("overlay"),
        ultrapeer_fraction=0.25, leaf_degree=2, capacity_weight=capacity,
    )
    return rngs, overlay, het


def _measure(overlay, het, seed=99):
    pairs = uniform_pairs(overlay.n_slots, 500, np.random.default_rng(seed))
    nd = het.slot_delays(overlay.embedding)
    return overlay.mean_lookup_latency(pairs, node_delay=nd, ttl=7, retry_timeout=4000.0)


def test_two_tier_gnutella_under_prop(benchmark, emit):
    def run():
        out = {}
        for label, policy in (("none", None), ("PROP-G", "G"), ("PROP-O m=2", "O")):
            rngs, overlay, het = _world()
            if policy is not None:
                sim = Simulator()
                cfg = PROPConfig(policy=policy, m=2 if policy == "O" else None)
                eng = PROPEngine(overlay, cfg, sim, rngs)
                eng.start()
                sim.run_until(DURATION)
                exchanges = eng.counters.exchanges
            else:
                exchanges = 0
            fast_up = float(np.mean(het.is_fast[overlay.embedding[overlay.ultrapeer_slots]]))
            out[label] = (_measure(overlay, het), exchanges, fast_up)
        return out

    data = run_once(benchmark, run)
    rows = [[label, lat, ex, frac] for label, (lat, ex, frac) in data.items()]
    emit(
        "Two-tier Gnutella (0.6)  lookup latency under PROP "
        f"(n = {N}, 25% ultrapeers elected by capacity)\n\n"
        + format_table(
            ["protocol", "mean lookup (ms)", "exchanges", "fast fraction among ultrapeers"],
            rows,
        )
    )

    none, g, o = data["none"], data["PROP-G"], data["PROP-O m=2"]
    # both policies improve on the unoptimized two-tier overlay
    assert g[0] < none[0]
    assert o[0] < none[0]
    # PROP-O keeps the capacity-elected mesh: all ultrapeers stay fast
    assert o[2] == none[2] == 1.0
    # PROP-G dilutes it (slow hosts drift into mesh positions)
    assert g[2] < 1.0
