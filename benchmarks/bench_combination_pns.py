"""Combination with other approaches (Sections 1 / 6): "Combining them
with other recent mechanisms will further improve their performance."

Regenerates the claim on Chord: plain Chord, Chord + PROP-G, Chord +
PNS, Chord + PNS + PROP-G (PNS fingers refreshed periodically so
identifier swaps and proximity selection cooperate), plus the PIS
identifier assignment as the third baseline family.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_table
from repro.harness.sweep import run_sweep


def test_combination_with_pns_and_pis(benchmark, emit, workers):
    base = dict(overlay_kind="chord", duration=2400.0, lookups_per_sample=600)
    configs = {
        "Chord": paper_config(**base),
        "Chord+PROP-G": paper_config(prop=PROPConfig(policy="G"), **base),
        "Chord+PNS": paper_config(pns=True, **base),
        "Chord+PNS+PROP-G": paper_config(
            pns=True, pns_refresh_interval=600.0, prop=PROPConfig(policy="G"), **base
        ),
        "Chord+PIS": paper_config(pis_landmarks=8, **base),
        "Chord+PIS+PROP-G": paper_config(
            pis_landmarks=8, prop=PROPConfig(policy="G"), **base
        ),
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    rows = [
        [label, r.initial_stretch, r.final_stretch, r.final_lookup_latency]
        for label, r in results.items()
    ]
    emit(
        "Combination  Chord routing stretch / lookup latency under baselines and PROP-G\n\n"
        + format_table(
            ["deployment", "initial stretch", "final stretch", "final lookup (ms)"], rows
        )
    )

    plain = results["Chord"].final_lookup_latency
    # every location-aware mechanism beats plain Chord
    for label in ("Chord+PROP-G", "Chord+PNS", "Chord+PIS"):
        assert results[label].final_lookup_latency < plain
    # layering PROP-G on a baseline improves (or at worst matches) it
    assert (
        results["Chord+PNS+PROP-G"].final_lookup_latency
        <= results["Chord+PNS"].final_lookup_latency * 1.02
    )
    assert (
        results["Chord+PIS+PROP-G"].final_lookup_latency
        <= results["Chord+PIS"].final_lookup_latency * 1.02
    )
