"""Warm-up convergence: "The warm up procedure will last for
MAX_INIT_TRIAL times; simulations … show this number to be less than
ten."

Regenerates the justification: the link-stretch objective has converged
(1 % tolerance) within the first ten probe rounds — extending warm-up
beyond ten fixed-rate trials would buy nothing.
"""

import numpy as np

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_series, format_table
from repro.metrics.convergence import first_stable_index


def test_warmup_converges_within_ten_trials(benchmark, emit):
    # sample once per probe round (INIT_TIMER = 60 s)
    cfg = paper_config(
        overlay_kind="gnutella",
        prop=PROPConfig(policy="G", max_init_trial=20),
        duration=20 * 60.0,
        sample_interval=60.0,
    )
    result = run_once(benchmark, lambda: run_experiment(cfg, measure_lookups=False))

    series = result.link_stretch
    idx = first_stable_index(series, rel_tol=0.01, window=3)
    exchanges_per_round = np.diff(result.exchanges)

    emit(
        format_series(
            "Warm-up convergence  link stretch per probe round (INIT_TIMER = 60 s)",
            result.times,
            {"link stretch": series},
        )
        + "\n\n"
        + format_table(
            ["quantity", "value"],
            [
                ["stable after round", idx if idx is not None else -1],
                ["exchanges in rounds 1-10", int(exchanges_per_round[:10].sum())],
                ["exchanges in rounds 11-20", int(exchanges_per_round[10:].sum())],
            ],
        )
    )

    assert idx is not None and idx <= 10
    # the bulk of exchanges happen inside the ten-round warm-up window
    assert exchanges_per_round[:10].sum() > 3 * exchanges_per_round[10:].sum()
