"""Resilience under node failures (extension).

The paper leans on related work (Chun, Zhao & Kubiatowicz, IPTPS'05 —
its reference for the heterogeneity setting) for the concern that
location-aware neighbor selection can hurt *resilience*.  PROP-G cannot:
it only permutes the embedding, so the set of slot paths available under
any failure pattern is untouched, while the *latency* of the surviving
paths still improves.  This bench kills increasing fractions of a Chord
ring and reports lookup success and surviving-lookup latency with and
without a converged PROP-G deployment.
"""

import numpy as np

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.experiment import build_world
from repro.harness.reporting import format_table
from repro.obs.registry import Histogram

FAIL_FRACTIONS = [0.0, 0.1, 0.2, 0.3]

#: Fixed lookup-latency buckets (ms): Chord-500 paths top out well under
#: 16 s, and identical edges keep the measured distributions comparable
#: column for column across failure fractions.
LATENCY_BUCKETS = tuple(float(e) for e in range(250, 16001, 250))


def _measure(world, frac, n_lookups=400):
    ov = world.overlay
    rng = np.random.default_rng(1234)
    alive = np.ones(ov.n_slots, dtype=bool)
    if frac > 0:
        dead = rng.choice(ov.n_slots, size=int(frac * ov.n_slots), replace=False)
        alive[dead] = False
    alive_slots = np.flatnonzero(alive)
    hist = Histogram("lookup_ms", LATENCY_BUCKETS)
    failures = 0
    for _ in range(n_lookups):
        src = int(rng.choice(alive_slots))
        key = int(rng.integers(0, ov.space))
        try:
            path = ov.route_with_failures(src, key, alive)
            hist.observe(ov.path_latency(path))
        except RuntimeError:
            failures += 1
    success = 1.0 - failures / n_lookups
    return success, hist


def test_resilience_under_failures(benchmark, emit):
    def run():
        plain = build_world(paper_config(overlay_kind="chord", n_overlay=500))
        optimized = build_world(
            paper_config(overlay_kind="chord", n_overlay=500, prop=PROPConfig(policy="G"))
        )
        optimized.sim.run_until(3600.0)
        out = {}
        for frac in FAIL_FRACTIONS:
            out[frac] = (_measure(plain, frac), _measure(optimized, frac))
        return out

    data = run_once(benchmark, run)

    rows = []
    for frac, ((s0, d0), (s1, d1)) in data.items():
        rows.append([f"{frac:.0%}", s0, d0.mean, d0.percentile(99),
                     s1, d1.mean, d1.percentile(99)])
    emit(
        "Resilience  Chord lookups under random node failures "
        "(left: plain, right: after 1 h of PROP-G)\n\n"
        + format_table(
            ["failed", "success", "mean(ms)", "p99(ms)",
             "success+PROP-G", "mean(ms)+PROP-G", "p99(ms)+PROP-G"],
            rows,
        )
    )

    for frac, ((s0, d0), (s1, d1)) in data.items():
        # PROP-G never reduces success probability (identical slot paths)
        assert s1 == s0
        # and the surviving lookups are faster after optimization
        # (Histogram.mean is exact: total/count, independent of buckets)
        if d0.count and d1.count:
            assert d1.mean < d0.mean
    # lookups overwhelmingly survive moderate churn-scale failures
    assert data[0.2][0][0] > 0.95
