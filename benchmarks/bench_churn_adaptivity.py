"""Dynamic environment: adaptivity to churn.

Paper claims (Sections 3.2 / 4.3 / 6): PROP handles departures and
arrivals gracefully — after churn the timers reset and new neighbors
are probed first, so the topology re-converges and "the frequency of
probing will reduce quickly after a short period of time".

Scenario: converge for 1 h, inject a 10-minute churn burst replacing a
substantial share of the population, then observe recovery for 1 h.
"""

import numpy as np

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_series
from repro.workloads.churn import ChurnConfig

BURST_START = 3600.0
BURST_STOP = 4200.0
END = 7800.0


def test_churn_burst_recovery(benchmark, emit):
    cfg = paper_config(
        overlay_kind="gnutella",
        n_overlay=800,
        n_spare=200,
        prop=PROPConfig(policy="G"),
        churn=ChurnConfig(rate_per_node=0.002, start=BURST_START, stop=BURST_STOP),
        duration=END,
        sample_interval=300.0,
        lookups_per_sample=500,
    )
    result = run_once(benchmark, lambda: run_experiment(cfg))

    emit(
        format_series(
            "Churn adaptivity  link stretch and probe rate around a churn burst "
            f"(burst {BURST_START:.0f}-{BURST_STOP:.0f} s)",
            result.times,
            {
                "link stretch": result.link_stretch,
                "probes (cum)": result.probes.astype(float),
            },
        )
    )

    t = result.times
    pre = result.link_stretch[np.searchsorted(t, BURST_START)]
    during = result.link_stretch[np.searchsorted(t, BURST_STOP)]
    final = result.link_stretch[-1]

    # the burst disturbs the converged topology...
    assert during > pre
    # ...and PROP recovers most of the damage afterwards
    assert final < pre + 0.5 * (during - pre)

    # probe rate: churn restarts probing, then the Markov timers damp it
    rates = result.probe_rate()
    burst_idx = np.searchsorted(t[1:], BURST_STOP)
    pre_idx = np.searchsorted(t[1:], BURST_START) - 1
    assert rates[burst_idx] > rates[pre_idx]
    assert rates[-1] < rates[burst_idx]
