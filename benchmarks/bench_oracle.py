"""Latency-oracle backends: cost and convergence parity (``make bench-oracle``).

The exact oracle keeps the full n x n shortest-path matrix — precise but
O(n^2) resident.  The coordinate backends trade accuracy for memory:
Vivaldi fits d-dimensional spring coordinates over O(n*k) sampled pairs
(O(n*dim) state), the landmark backend keeps exact distances to m
transit-domain landmarks (O(n*m) state).  Two questions decide whether
they are usable stand-ins:

* **cost** — setup wall time and resident state bytes per backend at
  the paper's scale (ts-large, n = 1000), recorded to
  ``benchmarks/history.jsonl`` so ``make bench-check`` gates the
  trajectory;
* **fidelity** — does PROP-G *driven by* an approximate oracle still
  converge?  Both runs are scored by a fresh exact oracle (the estimate
  being optimized must not grade its own homework); acceptance is the
  Vivaldi-driven final improvement landing within 15% of the
  exact-driven one.
"""

from __future__ import annotations

import time

from benchmarks.common import PAPER, paper_config, record_history, run_once
from repro.core.config import PROPConfig
from repro.harness.experiment import build_world
from repro.harness.reporting import format_table
from repro.netsim.rng import RngRegistry
from repro.topology.factory import ORACLE_BACKENDS, build_oracle
from repro.topology.latency import LatencyOracle
from repro.topology.presets import build_preset
from repro.topology.vivaldi import VivaldiOracle

N = PAPER["n_overlay"]  # 1000: the paper-scale member count
SEED = 0

#: Relative tolerance on the final improvement ratio (acceptance bound).
PARITY_TOLERANCE = 0.15


def _substrate(seed: int = SEED):
    rngs = RngRegistry(seed)
    net = build_preset("ts-large", rngs.stream("topology"))
    hosts = rngs.stream("membership").choice(net.stub_hosts, size=N, replace=False)
    return net, hosts


def test_oracle_setup_cost(benchmark, emit):
    """Setup time + resident state for every backend at ts-large n=1000."""

    def run():
        net, hosts = _substrate()
        out = {}
        for backend in ORACLE_BACKENDS:
            started = time.perf_counter()
            oracle = build_oracle(backend, net, hosts, seed=SEED)
            seconds = time.perf_counter() - started
            entry = {
                "setup_seconds": round(seconds, 4),
                "state_bytes": oracle.state_nbytes(),
            }
            if isinstance(oracle, VivaldiOracle):
                err = oracle.error_summary()
                entry["median_rel_error"] = round(err["median_rel_error"], 4)
            out[backend] = entry
        return out

    data = run_once(benchmark, run)
    for backend, entry in data.items():
        record_history(f"oracle-setup/{backend}", entry)

    rows = [
        [b, e["setup_seconds"], e["state_bytes"], e.get("median_rel_error", "-")]
        for b, e in data.items()
    ]
    emit(
        f"Latency-oracle backends  setup cost (ts-large, n = {N})\n\n"
        + format_table(
            ["backend", "setup seconds", "state bytes", "median rel error"], rows
        )
    )

    # the scaling story: coordinates beat the dense matrix by orders of
    # magnitude (n^2 * 8 bytes vs n*dim / n*m floats)
    exact_bytes = data["exact"]["state_bytes"]
    assert data["vivaldi"]["state_bytes"] < exact_bytes / 50
    assert data["landmark"]["state_bytes"] < exact_bytes / 10
    assert data["vivaldi"]["median_rel_error"] < 0.30


def _scored_run(backend: str):
    """One PROP-G deployment driven by ``backend``, scored exactly.

    Returns (initial, final, improvement, state_bytes) where initial and
    final are the mean logical-edge latencies measured by a *fresh exact
    oracle* — the approximation drives the protocol's decisions but
    never the grading.
    """
    config = paper_config(
        overlay_kind="gnutella",
        prop=PROPConfig(policy="G", nhops=2),
        oracle=backend,
        seed=SEED,
    )
    world = build_world(config)
    grader = (
        world.oracle
        if backend == "exact"
        else LatencyOracle(world.oracle.network, world.oracle.hosts)
    )

    def measure() -> float:
        driving = world.overlay.oracle
        world.overlay.oracle = grader
        try:
            return world.overlay.mean_logical_edge_latency()
        finally:
            world.overlay.oracle = driving

    initial = measure()
    world.sim.run_until(config.duration)
    final = measure()
    return initial, final, initial / final, world.oracle.state_nbytes()


def test_propg_convergence_parity(benchmark, emit):
    """PROP-G under each backend converges; Vivaldi within 15% of exact."""

    def run():
        return {backend: _scored_run(backend) for backend in ORACLE_BACKENDS}

    data = run_once(benchmark, run)
    for backend, (initial, final, improvement, state) in data.items():
        record_history(
            f"oracle-convergence/{backend}",
            {
                # lower-is-better forms for the history gate
                "final_edge_latency_ms": round(final, 3),
                "state_bytes": state,
            },
        )

    rows = [
        [b, round(i, 1), round(f, 1), round(imp, 3), s]
        for b, (i, f, imp, s) in data.items()
    ]
    emit(
        "PROP-G / Gnutella convergence by oracle backend "
        f"(ts-large, n = {N}, scored by the exact oracle)\n\n"
        + format_table(
            ["backend", "initial edge ms", "final edge ms",
             "improvement (init/final)", "oracle state bytes"],
            rows,
        )
    )

    exact_imp = data["exact"][2]
    for backend, (initial, final, improvement, _) in data.items():
        # every backend must actually improve the topology
        assert final < initial, f"{backend}: no improvement"
    # acceptance: Vivaldi-driven final improvement within 15% of exact
    viv_imp = data["vivaldi"][2]
    assert abs(viv_imp - exact_imp) / exact_imp <= PARITY_TOLERANCE, (
        f"vivaldi improvement {viv_imp:.3f} vs exact {exact_imp:.3f}"
    )
    # O(n*dim) resident state while driving the protocol
    assert data["vivaldi"][3] < data["exact"][3] / 50
