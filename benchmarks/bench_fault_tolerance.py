"""Fault tolerance of the message-level protocol plane.

The paper's simulator assumes a perfect network; the message plane lets
us ask what PROP's convergence costs under packet loss and transient
partitions.  Two claims are pinned here:

* **Graceful degradation** — loss slows adjustment (fewer exchanges per
  simulated hour; the Markov timers back off on failed probes) but the
  protocol keeps converging: the final link stretch still improves on
  the initial topology at every loss rate.
* **Partition safety** — a transient partition suppresses cross-group
  exchanges while installed, and after healing the protocol resumes;
  the two-phase exchange commit means no run ever leaves a half-applied
  exchange (that invariant is property-tested in
  ``tests/properties/test_fault_safety.py``; here we check liveness).
"""

from benchmarks.common import run_once
from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig
from repro.harness.reporting import format_table
from repro.harness.sweep import run_sweep

WORLD = dict(preset="ts-small", n_overlay=150, duration=3600.0,
             sample_interval=720.0)
LOSS_RATES = (0.0, 0.1, 0.3)


def _config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(
        prop=PROPConfig(policy="G"), transport="sim", **WORLD, **overrides
    )


def test_fault_tolerance_loss_sweep(benchmark, emit, workers):
    configs = {f"loss={p:.0%}": _config(loss=p) for p in LOSS_RATES}
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = []
    for label, r in results.items():
        stats, net = r.net_stats, r.net_counters
        rows.append([
            label,
            r.exchanges[-1],
            f"{r.link_stretch[0]:.3f} -> {r.link_stretch[-1]:.3f}",
            stats.total_sent,
            stats.total_dropped,
            net.walk_timeouts + net.vote_timeouts,
        ])
    emit(
        "Fault tolerance  PROP-G convergence vs message loss\n\n"
        + format_table(
            ["loss", "exchanges", "link stretch", "sent", "dropped", "timeouts"],
            rows,
        )
    )

    by_loss = {p: results[f"loss={p:.0%}"] for p in LOSS_RATES}
    # Loss costs exchanges but never correctness: every run still improves.
    for p, r in by_loss.items():
        assert r.link_stretch[-1] < r.link_stretch[0], f"no improvement at loss={p}"
    assert by_loss[0.3].exchanges[-1] < by_loss[0.0].exchanges[-1]
    assert by_loss[0.0].net_stats.total_dropped == 0
    assert by_loss[0.3].net_stats.total_dropped > 0


def test_fault_tolerance_transient_partition(benchmark, emit):
    from repro.harness.experiment import run_experiment

    cfg = _config(partitions=("a:b@600-1800",))
    result = run_once(
        benchmark, lambda: run_experiment(cfg, measure_lookups=False)
    )

    stats, net = result.net_stats, result.net_counters
    emit(
        "Fault tolerance  PROP-G across a transient partition (600 s - 1800 s)\n\n"
        + format_table(
            ["exchanges", "link stretch", "partition drops", "prepared timeouts"],
            [[
                result.exchanges[-1],
                f"{result.link_stretch[0]:.3f} -> {result.link_stretch[-1]:.3f}",
                stats.drop_reasons.get("partition", 0),
                net.prepared_timeouts,
            ]],
        )
    )

    assert stats.drop_reasons.get("partition", 0) > 0
    # The protocol survives the partition and keeps optimizing after heal.
    assert result.exchanges[-1] > 0
    assert result.link_stretch[-1] < result.link_stretch[0]
