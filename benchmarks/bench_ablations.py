"""Ablations over the design choices DESIGN.md calls out.

* MIN_VAR — Section 4.2 sets it to 0 ("if Var > 0 then L_t0 > L_t1 …
  So in our simulation part, we will set MIN_VAR = 0"); raising it
  trades exchanges for convergence quality.
* Markov timer — versus a fixed-period probe timer at equal INIT_TIMER:
  the backoff saves probes at equal final quality.
* nhops beyond 2 — Section 5.2 argues nhop = 2 minimizes cost with full
  benefit; larger TTLs pay more walk messages for no extra gain.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_table
from repro.harness.sweep import run_sweep


def test_ablation_min_var(benchmark, emit, workers):
    configs = {
        f"MIN_VAR={mv}": paper_config(
            overlay_kind="gnutella",
            prop=PROPConfig(policy="G", min_var=mv),
            duration=2400.0,
        )
        for mv in (0.0, 100.0, 500.0, 2000.0)
    }
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = [
        [label, r.link_stretch[-1] / r.link_stretch[0], r.final_counters.exchanges]
        for label, r in results.items()
    ]
    emit(
        "Ablation  MIN_VAR acceptance threshold (PROP-G / Gnutella)\n\n"
        + format_table(["threshold", "stretch ratio", "exchanges"], rows)
    )

    # exchanges monotonically drop with the threshold; MIN_VAR = 0
    # converges at least as well as any higher threshold
    ex = [r.final_counters.exchanges for r in results.values()]
    assert all(a >= b for a, b in zip(ex, ex[1:]))
    ratios = [r.link_stretch[-1] / r.link_stretch[0] for r in results.values()]
    assert ratios[0] <= min(ratios) + 0.02


def test_ablation_markov_timer(benchmark, emit, workers):
    # max_timer_factor=2 caps the timer at one doubling (2I, served once,
    # then back to I): effectively a (nearly) fixed-rate prober.
    configs = {
        "Markov timer (2^5 cap)": paper_config(
            overlay_kind="gnutella",
            prop=PROPConfig(policy="G", max_timer_factor=32.0),
            duration=5400.0,
        ),
        "near-fixed timer (2^1 cap)": paper_config(
            overlay_kind="gnutella",
            prop=PROPConfig(policy="G", max_timer_factor=2.0),
            duration=5400.0,
        ),
    }
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = [
        [
            label,
            r.link_stretch[-1] / r.link_stretch[0],
            r.final_counters.probes,
            r.final_counters.total_messages,
        ]
        for label, r in results.items()
    ]
    emit(
        "Ablation  Markov-chain backoff vs near-fixed probe timer\n\n"
        + format_table(["timer policy", "stretch ratio", "probes", "messages"], rows)
    )

    markov = results["Markov timer (2^5 cap)"]
    fixed = results["near-fixed timer (2^1 cap)"]
    # equal-quality convergence with materially fewer probes
    assert markov.final_counters.probes < 0.8 * fixed.final_counters.probes
    assert (
        markov.link_stretch[-1] / markov.link_stretch[0]
        < fixed.link_stretch[-1] / fixed.link_stretch[0] + 0.05
    )


def test_ablation_nhops_cost_benefit(benchmark, emit, workers):
    configs = {
        f"nhops={h}": paper_config(
            overlay_kind="gnutella",
            prop=PROPConfig(policy="G", nhops=h),
            duration=2400.0,
        )
        for h in (2, 4, 6)
    }
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = [
        [
            label,
            r.link_stretch[-1] / r.link_stretch[0],
            r.final_counters.walk_messages,
        ]
        for label, r in results.items()
    ]
    emit(
        "Ablation  probe TTL cost/benefit (PROP-G / Gnutella)\n\n"
        + format_table(["TTL", "stretch ratio", "walk messages"], rows)
    )

    # bigger TTLs cost more walk messages...
    walks = [r.final_counters.walk_messages for r in results.values()]
    assert walks[0] < walks[1] < walks[2]
    # ...for no material stretch gain over nhops = 2
    ratios = [r.link_stretch[-1] / r.link_stretch[0] for r in results.values()]
    assert ratios[0] < min(ratios[1:]) + 0.05


def test_ablation_prop_o_selection_policy(benchmark, emit, workers):
    configs = {
        sel: paper_config(
            overlay_kind="gnutella",
            prop=PROPConfig(policy="O", m=3, selection=sel),
            duration=2400.0,
        )
        for sel in ("greedy", "farthest", "random")
    }
    results = run_once(
        benchmark, lambda: run_sweep(configs, measure_lookups=False, workers=workers)
    )

    rows = [
        [label, r.link_stretch[-1] / r.link_stretch[0], r.final_counters.exchanges]
        for label, r in results.items()
    ]
    emit(
        "Ablation  PROP-O neighbor-selection policy (m = 3)\n\n"
        + format_table(["selection", "stretch ratio", "exchanges"], rows)
    )

    ratios = {label: r.link_stretch[-1] / r.link_stretch[0] for label, r in results.items()}
    # the gain-ranked default converges at least as well as the heuristics
    assert ratios["greedy"] <= min(ratios.values()) + 0.03


def test_ablation_timed_vs_instantaneous_engine(benchmark, emit):
    """Fidelity ablation: do message latencies change the story?  The
    timed engine delays every probe by its walk + collection time and
    re-checks Var at commit (stale probes abort); the converged quality
    should match the instantaneous abstraction the paper uses."""
    from repro.core.timed_protocol import TimedPROPEngine
    from repro.harness.experiment import build_world

    def run_pair():
        out = {}
        for label, timed in (("instantaneous", False), ("timed", True)):
            cfg = paper_config(
                overlay_kind="gnutella", prop=PROPConfig(policy="G"), duration=3600.0
            )
            w = build_world(cfg)
            if timed:
                # replace the engine with the timed variant on the same world
                from repro.netsim.rng import RngRegistry

                w.sim = type(w.sim)()  # fresh simulator (drops queued probes)
                w.engine = TimedPROPEngine(w.overlay, cfg.prop, w.sim, RngRegistry(cfg.seed))
                w.engine.start()
            w.sim.run_until(3600.0)
            out[label] = (
                w.overlay.mean_logical_edge_latency(),
                w.engine.counters.exchanges,
                getattr(w.engine, "stale_aborts", 0),
            )
        return out

    data = run_once(benchmark, run_pair)
    rows = [[label, lat, ex, stale] for label, (lat, ex, stale) in data.items()]
    emit(
        "Ablation  instantaneous vs message-latency-aware engine (PROP-G / Gnutella)\n\n"
        + format_table(
            ["engine", "final mean edge latency (ms)", "exchanges", "stale aborts"],
            rows,
        )
    )
    inst, timed = data["instantaneous"], data["timed"]
    assert timed[0] < 1.3 * inst[0]  # same convergence story
