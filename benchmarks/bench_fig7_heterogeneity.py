"""Figure 7: average lookup delay under bimodal processing delays, when
varying the fraction of lookups that target fast nodes.

Paper series: PROP-O (m ∈ {1, 2, 4}), PROP-G and LTM in a Gnutella-like
environment; fast nodes 1 ms processing, slow nodes 100 ms, 50 % fast;
delays reported as a normalized ratio.  Paper shape: LTM best when all
queries target slow nodes; PROP-G's (and, in the paper, LTM's) delay
rises as more queries target fast nodes; PROP-O's falls because it alone
preserves the capacity-degree correlation — fast nodes keep their hub
connectivity.

Our reproduction (EXPERIMENTS.md): PROP-G rising and PROP-O falling
reproduce; LTM stays flat-best rather than rising — our LTM's add rule
densifies the overlay enough to mask the effect.  The degree-correlation
mechanism itself is asserted directly.
"""

import numpy as np

from benchmarks.common import fig7_config, run_once
from repro.baselines.ltm import LTMConfig
from repro.core.config import PROPConfig
from repro.harness.experiment import build_world
from repro.harness.reporting import format_table
from repro.harness.sweep import run_sweep

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]

PROTOCOLS = {
    "PROP-O (m=1)": dict(prop=PROPConfig(policy="O", m=1)),
    "PROP-O (m=2)": dict(prop=PROPConfig(policy="O", m=2)),
    "PROP-O (m=4)": dict(prop=PROPConfig(policy="O", m=4)),
    "PROP-G": dict(prop=PROPConfig(policy="G")),
    "LTM": dict(ltm=LTMConfig(max_cuts_per_round=4)),
}


def test_fig7_bimodal_delay_vs_fast_fraction(benchmark, emit, workers):
    def run_grid():
        grid = {}
        for label, kw in PROTOCOLS.items():
            configs = {
                f"{label} phi={phi}": fig7_config(
                    overlay_kind="gnutella", fast_lookup_fraction=phi, **kw
                )
                for phi in FRACTIONS
            }
            grid[label] = run_sweep(configs, workers=workers)
        # unoptimized reference for normalization
        grid["none"] = run_sweep(
            {
                f"none phi={phi}": fig7_config(
                    overlay_kind="gnutella", fast_lookup_fraction=phi
                )
                for phi in FRACTIONS
            },
            workers=workers,
        )
        return grid

    grid = run_once(benchmark, run_grid)

    # normalize by the unoptimized delay at phi = 0 (single constant)
    base = next(iter(grid["none"].values())).initial_lookup_latency
    rows = []
    final = {}
    for label in list(PROTOCOLS) + ["none"]:
        results = grid[label]
        vals = [r.final_lookup_latency for r in results.values()]
        final[label] = vals
        rows.append([label] + [v / base for v in vals])
    emit(
        "Fig 7  Normalized avg lookup delay vs fraction of fast-targeted lookups\n"
        f"(normalized by the unoptimized delay at phi=0 = {base:.0f} ms)\n\n"
        + format_table(["protocol"] + [f"phi={p}" for p in FRACTIONS], rows)
    )

    # Shape assertions:
    # 1. PROP-G's delay trends UP (or stays flat) as lookups concentrate
    #    on fast nodes — it never improves with phi.
    g = final["PROP-G"]
    assert g[-1] >= g[0] - 0.05 * g[0]
    # 2. every PROP-O variant trends DOWN with phi...
    for m_label in ("PROP-O (m=1)", "PROP-O (m=2)", "PROP-O (m=4)"):
        o = final[m_label]
        assert o[-1] <= o[0] + 0.02 * o[0]
    # ...and the PROP-O family beats PROP-G at phi = 1 (the paper's
    # heterogeneity headline; individual m draws sit within noise of
    # each other, so compare the family's best).
    best_o = min(final[m][-1] for m in ("PROP-O (m=1)", "PROP-O (m=2)", "PROP-O (m=4)"))
    assert best_o < g[-1]
    # 3. every optimizer beats no optimization everywhere
    for label in PROTOCOLS:
        assert all(v < n for v, n in zip(final[label], final["none"]))


def test_fig7_degree_correlation_mechanism(benchmark, emit):
    """The mechanism behind Fig 7: PROP-O preserves the fast-host degree
    advantage, PROP-G and LTM dissolve it."""

    def run_three():
        gaps = {}
        for label, kw in (
            ("none", {}),
            ("PROP-O (m=3)", dict(prop=PROPConfig(policy="O", m=3))),
            ("PROP-G", dict(prop=PROPConfig(policy="G"))),
            ("LTM", dict(ltm=LTMConfig(max_cuts_per_round=4))),
        ):
            w = build_world(fig7_config(overlay_kind="gnutella", **kw))
            w.sim.run_until(w.config.duration)
            deg = w.overlay.degree_sequence()
            fast = w.het.fast_slots(w.overlay.embedding)
            slow = w.het.slow_slots(w.overlay.embedding)
            gaps[label] = float(deg[fast].mean() - deg[slow].mean())
        return gaps

    gaps = run_once(benchmark, run_three)
    emit(
        "Fig 7 mechanism  fast-host mean degree minus slow-host mean degree\n\n"
        + format_table(["protocol", "degree gap"], [[k, v] for k, v in gaps.items()])
    )
    assert gaps["PROP-O (m=3)"] == gaps["none"]  # degrees untouched
    assert gaps["PROP-G"] < 0.4 * gaps["none"]  # correlation dissolved
    assert np.isfinite(gaps["LTM"])
