"""Figure 5(a): PROP-G in Gnutella — average lookup latency vs time,
varying the probe TTL.

Paper series: n = 1000 with nhops ∈ {1, 2, 4} and the random-probing
scenario.  Expected shape: nhops = 1 (neighbors exchange) barely helps;
nhops ∈ {2, 4} and random probing overlap and reduce latency
substantially; curves dip non-monotonically but trend down.
"""

import numpy as np

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_series
from repro.harness.sweep import run_sweep

SCENARIOS = {
    "n=1000, nhops=1": PROPConfig(policy="G", nhops=1),
    "n=1000, nhops=2": PROPConfig(policy="G", nhops=2),
    "n=1000, nhops=4": PROPConfig(policy="G", nhops=4),
    "n=1000, random": PROPConfig(policy="G", random_probe=True),
}


def test_fig5a_gnutella_vary_ttl(benchmark, emit, workers):
    configs = {
        label: paper_config(overlay_kind="gnutella", prop=prop)
        for label, prop in SCENARIOS.items()
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    times = next(iter(results.values())).times
    series = {label: r.lookup_latency for label, r in results.items()}
    emit(
        format_series(
            "Fig 5(a)  PROP-G / Gnutella: avg lookup latency (ms) vs time, varying TTL",
            times,
            series,
        )
    )

    # Shape assertions (the figure's qualitative content):
    ratios = {
        label: r.final_lookup_latency / r.initial_lookup_latency
        for label, r in results.items()
    }
    assert ratios["n=1000, nhops=1"] > ratios["n=1000, nhops=2"]
    assert ratios["n=1000, nhops=2"] < 0.85
    assert abs(ratios["n=1000, nhops=2"] - ratios["n=1000, random"]) < 0.2
    assert abs(ratios["n=1000, nhops=2"] - ratios["n=1000, nhops=4"]) < 0.2
    for label, r in results.items():
        assert np.all(np.isfinite(r.lookup_latency))
