"""Figure 6(b): PROP-G in Chord — stretch vs time, varying system size.

Paper series: nhops = 2 with n ∈ {300, 500, 1000, 5000}.  Expected
shape: stretch reduced at every size; effectiveness shrinks mildly with
n but persists when almost all physical nodes join.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_series, format_table
from repro.harness.sweep import run_sweep

SIZES = [300, 500, 1000, 5000]


def test_fig6b_chord_vary_size(benchmark, emit, workers):
    configs = {
        f"n={n}, nhops=2": paper_config(
            overlay_kind="chord",
            n_overlay=n,
            prop=PROPConfig(policy="G", nhops=2),
            lookups_per_sample=min(600, 2 * n),
        )
        for n in SIZES
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    times = next(iter(results.values())).times
    emit(
        format_series(
            "Fig 6(b)  PROP-G / Chord: stretch vs time, varying size",
            times,
            {label: r.stretch for label, r in results.items()},
        )
        + "\n\n"
        + format_table(
            ["size", "initial stretch", "final stretch", "final/initial"],
            [
                [label, r.initial_stretch, r.final_stretch, r.final_stretch / r.initial_stretch]
                for label, r in results.items()
            ],
        )
    )

    for r in results.values():
        assert r.final_stretch < r.initial_stretch
    assert (results["n=5000, nhops=2"].final_stretch
            / results["n=5000, nhops=2"].initial_stretch < 0.95)
