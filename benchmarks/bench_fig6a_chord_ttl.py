"""Figure 6(a): PROP-G in Chord — stretch vs time, varying the probe TTL.

Same four scenarios as Fig 5(a), on the structured overlay, with the
routing-stretch metric (overlay route latency / direct latency — the
~2.5-5.5 range of the paper's axes).  Expected shape: nhops = 1
ineffective; nhops ∈ {2, 4} ≈ random probing; non-monotone dips.
"""

import numpy as np

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_series
from repro.harness.sweep import run_sweep

SCENARIOS = {
    "n=1000, nhops=1": PROPConfig(policy="G", nhops=1),
    "n=1000, nhops=2": PROPConfig(policy="G", nhops=2),
    "n=1000, nhops=4": PROPConfig(policy="G", nhops=4),
    "n=1000, random": PROPConfig(policy="G", random_probe=True),
}


def test_fig6a_chord_vary_ttl(benchmark, emit, workers):
    configs = {
        label: paper_config(overlay_kind="chord", prop=prop, lookups_per_sample=600)
        for label, prop in SCENARIOS.items()
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    times = next(iter(results.values())).times
    emit(
        format_series(
            "Fig 6(a)  PROP-G / Chord: stretch vs time, varying TTL",
            times,
            {label: r.stretch for label, r in results.items()},
        )
    )

    ratios = {label: r.final_stretch / r.initial_stretch for label, r in results.items()}
    assert ratios["n=1000, nhops=1"] > ratios["n=1000, nhops=2"]
    assert ratios["n=1000, nhops=2"] < 0.95
    assert abs(ratios["n=1000, nhops=2"] - ratios["n=1000, random"]) < 0.2
    # stretch magnitude in the paper's plotted range
    for r in results.values():
        assert 1.5 < r.initial_stretch < 10.0
        assert np.all(np.isfinite(r.stretch))
