"""Tracing overhead benchmark (``make bench-obs``).

Measures the Fig. 5(a) Gnutella workload (paper scale: ts-large,
n = 1000, one simulated hour of PROP-G with nhops = 2) in three arms:

* **untraced** — ``trace=False``: every instrumentation site resolves to
  the shared :class:`~repro.obs.trace.NullTracer` and pays exactly one
  attribute check.  This is the default for every figure benchmark, so
  its cost is the PR's perpetual tax and must stay within 5% of the
  pre-instrumentation baseline.
* **traced** — ``trace=True``: full event collection, reported so the
  cost of turning tracing on is a recorded number rather than folklore.
* the per-run event count, for tokens/second style context.

A second off/on triple measures **span tracing** on the message plane
(spans only exist there — the inline engines have no messages to
bracket): the same Section 5.1 world at n = 300 through
``SimTransport``, untraced vs fully traced.  The traced arm carries the
span events' full cost — roughly two extra events per message — so the
ratio is the price of causal tracing, and the untraced arm pins the
price of *not* tracing (context stamping resolves to enabled-checks)
under the same bench gate.

Each arm is the best of ``REPEATS`` runs (best-of is the standard way to
strip scheduler noise from a deterministic workload).  Results land in
``BENCH_obs.json`` at the repo root — the repo's first benchmark
trajectory artifact; later PRs append comparable entries.

Run directly (``python benchmarks/bench_obs_overhead.py``) or through
``make bench-obs``.  Not a pytest-benchmark module on purpose: it writes
an artifact, it does not assert.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.core.config import PROPConfig
from repro.harness.experiment import ExperimentConfig, run_experiment

REPEATS = 3

#: Fig. 5(a) shape: Gnutella overlay, PROP-G, nhops = 2 (the paper's
#: headline curve), Section 5.1 world.  Lookup measurement is off so the
#: timed region is the protocol + simulator hot path the tracer
#: instruments, not the Dijkstra sampling around it.
FIG5_WORKLOAD = ExperimentConfig(
    preset="ts-large",
    n_overlay=1000,
    overlay_kind="gnutella",
    prop=PROPConfig(policy="G", nhops=2),
    duration=3600.0,
    sample_interval=360.0,
    lookups_per_sample=1000,
)

#: Span-tracing arm: the same world through the message plane, scaled to
#: n = 300 so best-of-3 on both arms stays under half a minute (the
#: traced arm records every message flight and handler as a span pair).
SPAN_WORKLOAD = FIG5_WORKLOAD.but(
    n_overlay=300,
    transport="sim",
    duration=1800.0,
    lookups_per_sample=0,
)


def _best_of(config: ExperimentConfig, repeats: int = REPEATS) -> tuple[float, int]:
    """(best wall seconds, events recorded) over ``repeats`` runs."""
    best = float("inf")
    n_events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_experiment(config, measure_lookups=False)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        n_events = len(result.trace) if result.trace is not None else 0
    return best, n_events


def main(out_path: str | Path = Path(__file__).resolve().parents[1] / "BENCH_obs.json") -> dict:
    from common import record_history
    from repro.obs.bench_history import current_git_rev

    untraced_s, _ = _best_of(FIG5_WORKLOAD)
    traced_s, n_events = _best_of(FIG5_WORKLOAD.but(trace=True))
    span_off_s, _ = _best_of(SPAN_WORKLOAD)
    span_on_s, span_events = _best_of(SPAN_WORKLOAD.but(trace=True))
    payload = {
        "schema_version": "repro.bench-obs/3",
        "benchmark": "obs-overhead/fig5a-gnutella",
        "workload": {
            "preset": FIG5_WORKLOAD.preset,
            "n_overlay": FIG5_WORKLOAD.n_overlay,
            "policy": "G",
            "nhops": 2,
            "duration_s": FIG5_WORKLOAD.duration,
        },
        "repeats": REPEATS,
        "untraced_seconds": round(untraced_s, 4),
        "traced_seconds": round(traced_s, 4),
        "tracing_overhead_ratio": round(traced_s / untraced_s, 4),
        "events_recorded": n_events,
        "events_per_traced_second": round(n_events / traced_s, 1),
        "span_workload": {
            "n_overlay": SPAN_WORKLOAD.n_overlay,
            "transport": SPAN_WORKLOAD.transport,
            "duration_s": SPAN_WORKLOAD.duration,
        },
        "span_untraced_seconds": round(span_off_s, 4),
        "span_traced_seconds": round(span_on_s, 4),
        "span_overhead_ratio": round(span_on_s / span_off_s, 4),
        "span_events_recorded": span_events,
        "python": platform.python_version(),
        "git_rev": current_git_rev(Path(__file__).resolve().parent),
    }
    out_path = Path(out_path)
    out_path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    record_history(
        payload["benchmark"],
        {
            "untraced_seconds": payload["untraced_seconds"],
            "traced_seconds": payload["traced_seconds"],
            "tracing_overhead_ratio": payload["tracing_overhead_ratio"],
        },
        config=FIG5_WORKLOAD,
    )
    record_history(
        "obs-overhead/spans-msg-plane",
        {
            "untraced_seconds": payload["span_untraced_seconds"],
            "traced_seconds": payload["span_traced_seconds"],
            "span_overhead_ratio": payload["span_overhead_ratio"],
        },
        config=SPAN_WORKLOAD,
    )
    print(json.dumps(payload, indent=1))
    print(f"wrote {out_path}")
    return payload


if __name__ == "__main__":
    main()
