"""Seed-replication of the headline numbers (methodology extension).

The paper reports single simulation curves.  This bench reruns the two
headline deployments (PROP-G on Gnutella and on Chord, n = 1000,
ts-large) under five independent seeds and reports the mean ± std of
the improvement, confirming the figures are not single-world flukes.
"""

import numpy as np

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.replicate import replicate
from repro.harness.reporting import format_table

SEEDS = [0, 1, 2, 3, 4]


def test_headline_numbers_replicate_across_seeds(benchmark, emit, workers):
    def run():
        gnutella = replicate(
            paper_config(
                overlay_kind="gnutella",
                prop=PROPConfig(policy="G"),
                duration=2400.0,
                lookups_per_sample=500,
            ),
            SEEDS,
            workers=workers,
        )
        chord = replicate(
            paper_config(
                overlay_kind="chord",
                prop=PROPConfig(policy="G"),
                duration=2400.0,
                lookups_per_sample=400,
            ),
            SEEDS,
            workers=workers,
        )
        return gnutella, chord

    gnutella, chord = run_once(benchmark, run)

    rows = []
    for label, summary in (("Gnutella + PROP-G", gnutella), ("Chord + PROP-G", chord)):
        stretch_ratios = np.array(
            [r.stretch[-1] / r.stretch[0] for r in summary.results]
        )
        rows.append(
            [
                label,
                summary.mean_improvement(),
                summary.std_improvement(),
                float(stretch_ratios.mean()),
                float(stretch_ratios.std(ddof=1)),
            ]
        )
    emit(
        f"Replication  final/initial ratios across {len(SEEDS)} seeds\n\n"
        + format_table(
            ["deployment", "lookup ratio mean", "lookup ratio std",
             "stretch ratio mean", "stretch ratio std"],
            rows,
        )
    )

    for summary in (gnutella, chord):
        assert summary.all_replicas_improve()
        assert summary.mean_improvement() < 0.85
        # tight spread: the effect dwarfs world-to-world noise
        assert summary.std_improvement() < 0.1
