"""Figure 6(c): PROP-G in Chord — stretch vs time on the two topologies.

Expected shape: ts-large's stretch falls further (relatively) than
ts-small's, mirroring Fig 5(c) on the structured overlay.
"""

from benchmarks.common import paper_config, run_once
from repro.core.config import PROPConfig
from repro.harness.reporting import format_series, format_table
from repro.harness.sweep import run_sweep


def test_fig6c_chord_vary_topology(benchmark, emit, workers):
    configs = {
        preset: paper_config(
            overlay_kind="chord",
            preset=preset,
            prop=PROPConfig(policy="G", nhops=2),
            lookups_per_sample=600,
        )
        for preset in ("ts-large", "ts-small")
    }
    results = run_once(benchmark, lambda: run_sweep(configs, workers=workers))

    times = next(iter(results.values())).times
    emit(
        format_series(
            "Fig 6(c)  PROP-G / Chord: stretch vs time, two topologies",
            times,
            {label: r.stretch for label, r in results.items()},
        )
        + "\n\n"
        + format_table(
            ["topology", "initial", "final", "link-stretch ratio"],
            [
                [label, r.initial_stretch, r.final_stretch, r.link_stretch[-1] / r.link_stretch[0]]
                for label, r in results.items()
            ],
        )
    )

    large, small = results["ts-large"], results["ts-small"]
    assert large.final_stretch < large.initial_stretch
    assert small.final_stretch < small.initial_stretch
    assert (
        large.link_stretch[-1] / large.link_stretch[0]
        < small.link_stretch[-1] / small.link_stretch[0]
    )
